package sim

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// The differential harness: the wheel engine must dispatch byte-for-byte in
// the reference heap's order on any schedule. A schedule is a deterministic
// program driven by a seeded RNG — a mix of up-front events, nested
// rescheduling from inside callbacks, zero delays, far-future outliers (the
// overflow path), and partial RunUntil drains — executed against both
// engines, recording every dispatch as (id, now, pending-after).

// traceEntry is one dispatched event as observed by the harness. typed
// distinguishes sink-dispatched value events from closure callbacks, so a
// schedule that delivered the right id at the right time through the wrong
// path still fails the comparison.
type traceEntry struct {
	id      int
	now     float64
	pending int
	typed   bool
}

// Typed-event kinds of the schedule programs. Kind 1 is a plain traced
// event; kinds 2+depth respawn a nested sub-schedule from inside the sink,
// mirroring the closure path's respawn-from-callback pattern.
const (
	progKindPlain uint8 = iota + 1
	progKindRespawn0
	progKindRespawn1
	progKindRespawn2
)

// programSink receives the typed half of a schedule program. It appends to
// the same trace the closure half appends to, so one slice records the
// interleaved dispatch order across both event kinds.
type programSink struct {
	eng      *Engine
	trace    *[]traceEntry
	schedule func(depth int)
}

func (s *programSink) Dispatch(kind uint8, subject int32) {
	*s.trace = append(*s.trace, traceEntry{id: int(subject), now: s.eng.Now(), pending: s.eng.Pending(), typed: true})
	if kind >= progKindRespawn0 {
		s.schedule(int(kind-progKindRespawn0) + 1)
	}
}

// scheduleProgram runs a randomized schedule on eng and returns the
// dispatch trace. Events are a seeded mix of legacy closure callbacks
// (After) and typed value events (EmitAfter through a registered sink) in
// one program, so the trace also proves the closure adapter and the typed
// path share one (at, seq) order. All randomness comes from rng, so running
// it twice with equal-seeded RNGs yields the same program on both engines.
func scheduleProgram(eng *Engine, rng *rand.Rand, ops int) []traceEntry {
	var trace []traceEntry
	sink := &programSink{eng: eng, trace: &trace}
	eng.SetSink(sink)
	nextID := 0
	var schedule func(depth int)
	schedule = func(depth int) {
		id := nextID
		nextID++
		// Delay scale spans seven orders of magnitude so schedules cross
		// bucket, year, and overflow boundaries.
		var d float64
		switch rng.Intn(10) {
		case 0:
			d = 0 // same-timestamp FIFO and zero-delay self-rescheduling
		case 1, 2:
			d = rng.Float64() * 1e-4
		case 3, 4, 5, 6:
			d = rng.Float64()
		case 7, 8:
			d = rng.Float64() * 1e3
		default:
			d = rng.Float64() * 1e7 // far future: the overflow bucket
		}
		respawn := depth < 3 && rng.Intn(3) == 0
		if rng.Intn(3) == 0 {
			kind := progKindPlain
			if respawn {
				kind = progKindRespawn0 + uint8(depth)
			}
			eng.EmitAfter(d, kind, int32(id))
			return
		}
		eng.After(d, func() {
			trace = append(trace, traceEntry{id: id, now: eng.Now(), pending: eng.Pending()})
			if respawn {
				schedule(depth + 1)
			}
		})
	}
	sink.schedule = schedule
	for i := 0; i < ops; i++ {
		schedule(0)
		// Occasionally drain partway, exercising peek/RunUntil interleaved
		// with fresh scheduling.
		if rng.Intn(8) == 0 {
			eng.RunUntil(eng.Now() + rng.Float64()*10)
		}
	}
	eng.Run()
	return trace
}

// TestEngineDifferentialSchedules locks the wheel to the heap over many
// randomized schedules: identical dispatch traces (ids, clocks, pending
// counts) and identical final state.
func TestEngineDifferentialSchedules(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		wheel := NewEngine()
		ref := NewReferenceEngine()
		wantTrace := scheduleProgram(ref, rand.New(rand.NewSource(seed)), 120)
		gotTrace := scheduleProgram(wheel, rand.New(rand.NewSource(seed)), 120)
		if len(gotTrace) != len(wantTrace) {
			t.Fatalf("seed %d: wheel dispatched %d events, heap %d", seed, len(gotTrace), len(wantTrace))
		}
		for i := range gotTrace {
			if gotTrace[i] != wantTrace[i] {
				t.Fatalf("seed %d: dispatch %d differs: wheel %+v, heap %+v",
					seed, i, gotTrace[i], wantTrace[i])
			}
		}
		if wheel.Now() != ref.Now() || wheel.Pending() != ref.Pending() {
			t.Fatalf("seed %d: final state differs: wheel (now=%g pending=%d), heap (now=%g pending=%d)",
				seed, wheel.Now(), wheel.Pending(), ref.Now(), ref.Pending())
		}
	}
}

// TestEngineDifferentialLockstep drives both engines one dispatch at a time
// through RunUntil(peek boundary) style stepping, comparing clocks and
// pending counts after every single event — a sharper oracle than whole-run
// trace equality when hunting a divergence.
func TestEngineDifferentialLockstep(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		wheel, ref := NewEngine(), NewReferenceEngine()
		rw, rr := rand.New(rand.NewSource(seed)), rand.New(rand.NewSource(seed))
		var wTrace, rTrace []traceEntry
		load := func(eng *Engine, rng *rand.Rand, trace *[]traceEntry) {
			eng.SetSink(&programSink{eng: eng, trace: trace})
			for i := 0; i < 200; i++ {
				id := i
				d := rng.Float64() * math.Pow(10, float64(rng.Intn(7))-3)
				if rng.Intn(5) == 0 {
					d = 0
				}
				// Every third event goes through the typed path, so the
				// lockstep comparison also pins the adapter's seq
				// interleaving one dispatch at a time.
				if i%3 == 0 {
					eng.EmitAfter(d, progKindPlain, int32(id))
					continue
				}
				eng.After(d, func() {
					*trace = append(*trace, traceEntry{id: id, now: eng.Now(), pending: eng.Pending()})
				})
			}
		}
		load(wheel, rw, &wTrace)
		load(ref, rr, &rTrace)
		for step := 0; ; step++ {
			wAt, wOK := wheel.q.peekAt()
			rAt, rOK := ref.q.peekAt()
			if wOK != rOK || (wOK && wAt != rAt) {
				t.Fatalf("seed %d step %d: peek differs: wheel (%g,%v) heap (%g,%v)",
					seed, step, wAt, wOK, rAt, rOK)
			}
			if !wOK {
				break
			}
			wheel.RunUntil(wAt)
			ref.RunUntil(rAt)
			if len(wTrace) != len(rTrace) {
				t.Fatalf("seed %d step %d: trace lengths diverged (%d vs %d)", seed, step, len(wTrace), len(rTrace))
			}
			for i := range wTrace {
				if wTrace[i] != rTrace[i] {
					t.Fatalf("seed %d step %d: entry %d: wheel %+v heap %+v", seed, step, i, wTrace[i], rTrace[i])
				}
			}
		}
	}
}

// TestEngineDifferentialStations runs a contended multi-station workload —
// the platform simulator's exact usage pattern — on both engines and
// requires identical completion traces.
func TestEngineDifferentialStations(t *testing.T) {
	run := func(eng *Engine) []string {
		var out []string
		sched := NewStation(eng, 2)
		build := NewStation(eng, 3)
		rng := NewRNG(99)
		for i := 0; i < 300; i++ {
			i := i
			sched.Submit(
				func() float64 { return 0.1 + 1e-4*float64(sched.Served) },
				func(start, end float64) {
					build.Submit(
						func() float64 { return 2 + rng.Float64() },
						func(bs, be float64) {
							out = append(out, fmt.Sprintf("%d:%.9f:%.9f:%.9f", i, end, bs, be))
						})
				})
		}
		eng.Run()
		return out
	}
	want := run(NewReferenceEngine())
	got := run(NewEngine())
	if len(got) != len(want) {
		t.Fatalf("wheel completed %d jobs, heap %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("completion %d differs:\nwheel %s\nheap  %s", i, got[i], want[i])
		}
	}
}

// stationSink drives the typed half of the station differential: two
// chained TypedStations whose completions follow the Complete → logic →
// Next protocol.
type stationSink struct {
	eng          *Engine
	sched, build TypedStation
	schedEnd     []float64
	out          []string
}

const (
	stKindSched uint8 = iota + 1
	stKindBuild
)

func (s *stationSink) Dispatch(kind uint8, sub int32) {
	switch kind {
	case stKindSched:
		s.sched.Complete(sub)
		s.schedEnd[sub] = s.eng.Now()
		s.build.Submit(sub)
		s.sched.Next()
	case stKindBuild:
		s.build.Complete(sub)
		s.out = append(s.out, fmt.Sprintf("%d:%.9f:%.9f", sub, s.schedEnd[sub], s.eng.Now()))
		s.build.Next()
	}
}

// TestEngineDifferentialTypedStations holds TypedStation to the closure
// Station's contract: the same contended two-stage workload, run through
// subjects-and-kinds instead of closures, must complete in the identical
// order at bit-identical times — on both engines — and account the same
// Served / BusySeconds totals.
func TestEngineDifferentialTypedStations(t *testing.T) {
	const jobs = 300
	closureRun := func(eng *Engine) ([]string, float64, float64) {
		var out []string
		sched := NewStation(eng, 2)
		build := NewStation(eng, 3)
		rng := NewRNG(99)
		for i := 0; i < jobs; i++ {
			i := i
			sched.Submit(
				func() float64 { return 0.1 + 1e-4*float64(sched.Served) },
				func(_, end float64) {
					build.Submit(
						func() float64 { return 2 + rng.Float64() },
						func(_, be float64) {
							out = append(out, fmt.Sprintf("%d:%.9f:%.9f", i, end, be))
						})
				})
		}
		eng.Run()
		return out, sched.BusySeconds, build.BusySeconds
	}
	typedRun := func(eng *Engine) ([]string, float64, float64) {
		s := &stationSink{eng: eng, schedEnd: make([]float64, jobs)}
		rng := NewRNG(99)
		s.sched.Init(eng, 2, stKindSched, jobs, func(int32) float64 {
			return 0.1 + 1e-4*float64(s.sched.Served)
		})
		s.build.Init(eng, 3, stKindBuild, jobs, func(int32) float64 {
			return 2 + rng.Float64()
		})
		eng.SetSink(s)
		for i := 0; i < jobs; i++ {
			s.sched.Submit(int32(i))
		}
		eng.Run()
		return s.out, s.sched.BusySeconds, s.build.BusySeconds
	}
	want, wantSchedBusy, wantBuildBusy := closureRun(NewReferenceEngine())
	for _, impl := range []struct {
		name string
		run  func(*Engine) ([]string, float64, float64)
		eng  *Engine
	}{
		{"closure/wheel", closureRun, NewEngine()},
		{"typed/heap", typedRun, NewReferenceEngine()},
		{"typed/wheel", typedRun, NewEngine()},
	} {
		got, schedBusy, buildBusy := impl.run(impl.eng)
		if len(got) != len(want) {
			t.Fatalf("%s completed %d jobs, closure/heap %d", impl.name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s completion %d differs:\n%s: %s\nclosure/heap: %s",
					impl.name, i, impl.name, got[i], want[i])
			}
		}
		if schedBusy != wantSchedBusy || buildBusy != wantBuildBusy {
			t.Fatalf("%s busy-seconds differ: sched %g vs %g, build %g vs %g",
				impl.name, schedBusy, wantSchedBusy, buildBusy, wantBuildBusy)
		}
	}
}
