package sim

import (
	"testing"
)

// fuzzSink receives the typed events of a fuzz program. Plain kinds just
// trace; the respawn kind additionally emits a typed zero-delay follow-up
// and a small-delay closure event, so typed and closure events keep feeding
// each other's (at, seq) stream from inside a dispatch.
type fuzzSink struct {
	eng      *Engine
	trace    *[]traceEntry
	schedule func(d float64, respawn int)
}

const (
	fuzzKindPlain uint8 = iota + 1
	fuzzKindRespawn
)

func (s *fuzzSink) Dispatch(kind uint8, subject int32) {
	*s.trace = append(*s.trace, traceEntry{id: int(subject), now: s.eng.Now(), pending: s.eng.Pending(), typed: true})
	if kind == fuzzKindRespawn {
		s.eng.EmitAfter(0, fuzzKindPlain, subject+10_000)
		s.schedule(float64(subject%7)*1e-3+1e-5, 0)
	}
}

// fuzzProgram interprets raw bytes as a deterministic schedule and runs it,
// recording the dispatch trace. Three bytes per instruction: an opcode and a
// 16-bit operand. The opcode selects a delay scale (from sub-microsecond up
// to the overflow bucket's far future) for a closure or typed event, a
// partial RunUntil drain, or a nested respawn whose callbacks schedule
// further events — closure respawns schedule closures, typed respawns emit
// typed and closure events both, so a single program interleaves both event
// kinds in one (at, seq) stream. Because the program depends only on the
// bytes, running it on the wheel and the heap must yield identical traces —
// that equality is the fuzz property.
func fuzzProgram(eng *Engine, data []byte) []traceEntry {
	var trace []traceEntry
	nextID := 0
	var schedule func(d float64, respawn int)
	schedule = func(d float64, respawn int) {
		id := nextID
		nextID++
		eng.After(d, func() {
			trace = append(trace, traceEntry{id: id, now: eng.Now(), pending: eng.Pending()})
			if respawn > 0 {
				schedule(0, 0)
				schedule(d/3+1e-5, respawn-1)
			}
		})
	}
	sink := &fuzzSink{eng: eng, trace: &trace, schedule: schedule}
	eng.SetSink(sink)
	emit := func(d float64, kind uint8) {
		id := nextID
		nextID++
		eng.EmitAfter(d, kind, int32(id))
	}
	for i := 0; i+2 < len(data); i += 3 {
		op := data[i]
		v := float64(uint16(data[i+1])<<8 | uint16(data[i+2]))
		switch op % 12 {
		case 0:
			schedule(0, 0)
		case 1:
			schedule(v*1e-7, 0)
		case 2:
			schedule(v*1e-4, 0)
		case 3, 4:
			schedule(v*1e-2, 0)
		case 5:
			schedule(v, 0)
		case 6:
			schedule(v*1e3, 0) // far future: the overflow bucket
		case 7:
			eng.RunUntil(eng.Now() + v*1e-2)
		case 8:
			schedule(v*1e-2, 3)
		case 9:
			emit(0, fuzzKindPlain) // typed zero delay: FIFO ties with closures
		case 10:
			emit(v*1e-2, fuzzKindRespawn)
		case 11:
			emit(v*1e3, fuzzKindPlain) // typed far future: overflow bucket
		}
	}
	eng.Run()
	return trace
}

// FuzzEngineSchedule fuzzes the differential property directly: any byte
// string, decoded as a schedule, must dispatch identically on the wheel and
// the reference heap — same ids, same clocks, same pending counts, same
// final state. The checked-in corpus under testdata/fuzz seeds the search
// with schedules that cross bucket, revolution, and overflow boundaries.
func FuzzEngineSchedule(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 1, 3, 0, 9})
	// Every opcode once, mixed operands.
	f.Add([]byte{0, 0, 1, 1, 0, 200, 2, 3, 7, 3, 0, 50, 4, 10, 0, 5, 0, 2, 6, 0, 1, 7, 0, 90, 8, 0, 40})
	// Overflow spill then a dense chain marching the frontier past it (the
	// migration regression, engine-level).
	f.Add([]byte{6, 0, 1, 3, 0, 1, 3, 0, 2, 3, 0, 4, 3, 1, 0, 3, 2, 0, 3, 8, 0, 8, 16, 0})
	// Zero-delay storms interleaved with partial drains.
	f.Add([]byte{0, 0, 0, 0, 0, 0, 7, 0, 1, 0, 0, 0, 7, 0, 0, 8, 0, 0})
	// Tight timestamps around shared values: tie-breaking under pressure.
	f.Add([]byte{2, 0, 10, 2, 0, 10, 2, 0, 10, 1, 0, 10, 7, 0, 10, 2, 0, 10})
	// Typed and closure events interleaved: zero-delay ties, a typed
	// respawn feeding both streams, and a typed overflow spill crossed by
	// closure chains.
	f.Add([]byte{9, 0, 0, 0, 0, 0, 10, 0, 40, 8, 0, 40, 11, 0, 1, 3, 0, 2, 9, 0, 0, 7, 0, 90})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 3*512 {
			t.Skip("schedule longer than the harness budget")
		}
		want := fuzzProgram(NewReferenceEngine(), data)
		got := fuzzProgram(NewEngine(), data)
		if len(got) != len(want) {
			t.Fatalf("wheel dispatched %d events, heap %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("dispatch %d differs: wheel %+v, heap %+v", i, got[i], want[i])
			}
		}
	})
}
