package server

import (
	"bytes"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

const adviseURL = "/v1/advise?app=Video&platform=aws&c=500"

func TestRequestIDGenerated(t *testing.T) {
	s := newTestServer(t, nil)
	rr, _ := get(t, s, adviseURL, nil)
	id := rr.Header().Get("X-Request-ID")
	if id == "" {
		t.Fatal("response missing X-Request-ID")
	}
	if !regexp.MustCompile(`^[0-9a-f]{8}-\d+$`).MatchString(id) {
		t.Errorf("generated ID %q not in base-seq form", id)
	}
	rr2, _ := get(t, s, adviseURL, nil)
	if rr2.Header().Get("X-Request-ID") == id {
		t.Error("two requests shared a generated request ID")
	}
}

func TestRequestIDClientSupplied(t *testing.T) {
	s := newTestServer(t, nil)
	rr, _ := get(t, s, adviseURL, map[string]string{"X-Request-ID": "client-abc.123_x"})
	if got := rr.Header().Get("X-Request-ID"); got != "client-abc.123_x" {
		t.Errorf("valid client ID not propagated: got %q", got)
	}
	// Invalid IDs (bad alphabet, oversized) are replaced, never echoed: an
	// attacker-controlled header must not reach logs verbatim.
	for _, bad := range []string{"has space", "quote\"", "semi;colon", strings.Repeat("a", 65)} {
		rr, _ := get(t, s, adviseURL, map[string]string{"X-Request-ID": bad})
		if got := rr.Header().Get("X-Request-ID"); got == bad || got == "" {
			t.Errorf("invalid client ID %q handled as %q, want freshly generated", bad, got)
		}
	}
}

func TestRequestIDInErrorResponses(t *testing.T) {
	s := newTestServer(t, nil)
	rr, _ := get(t, s, "/v1/advise?app=Video&platform=aws&c=-3", nil)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("status = %d", rr.Code)
	}
	if rr.Header().Get("X-Request-ID") == "" {
		t.Error("error response missing X-Request-ID")
	}
}

func TestAccessLogCarriesRequestID(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(&lockedWriter{w: &buf, mu: &mu}, nil))
	s := newTestServer(t, func(c *Config) { c.AccessLog = logger })
	rr, _ := get(t, s, adviseURL, map[string]string{"X-Request-ID": "trace-me-42"})
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	mu.Lock()
	logged := buf.String()
	mu.Unlock()
	if !strings.Contains(logged, `"request_id":"trace-me-42"`) {
		t.Errorf("access log missing request ID: %q", logged)
	}
	if !strings.Contains(logged, `"route":"advise"`) || !strings.Contains(logged, `"code":200`) {
		t.Errorf("access log missing route/code: %q", logged)
	}
}

type lockedWriter struct {
	w  *bytes.Buffer
	mu *sync.Mutex
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

func TestRequestTraceSpans(t *testing.T) {
	rec := &obs.Memory{}
	s := newTestServer(t, func(c *Config) { c.Trace = rec })
	rr, _ := get(t, s, adviseURL, map[string]string{"X-Request-ID": "span-check"})
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	bursts := rec.Bursts()
	if len(bursts) != 1 {
		t.Fatalf("bursts = %d, want 1", len(bursts))
	}
	b := bursts[0]
	if b.Info.Label != "span-check" || b.Info.Platform != "serve" {
		t.Errorf("burst info = %+v", b.Info)
	}
	// The guard chain's span order: limit → admit → plan (an uncoalesced
	// request computes itself).
	var stages []obs.Stage
	for _, sp := range b.Spans {
		stages = append(stages, sp.Stage)
	}
	want := []obs.Stage{obs.StageLimit, obs.StageAdmit, obs.StagePlan}
	if len(stages) != len(want) {
		t.Fatalf("stages = %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("stages = %v, want %v", stages, want)
		}
	}
	// Spans are ordered in time and non-negative.
	for i, sp := range b.Spans {
		if sp.DurSec() < 0 || sp.StartSec < 0 {
			t.Errorf("span %d has negative time: %+v", i, sp)
		}
		if i > 0 && sp.StartSec < b.Spans[i-1].StartSec {
			t.Errorf("span %d starts before its predecessor", i)
		}
	}
}

func TestRequestTraceCoalescedFollower(t *testing.T) {
	rec := &obs.Memory{}
	s := newTestServer(t, func(c *Config) { c.Trace = rec })
	// Two identical slow requests: the follower coalesces onto the leader.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := httptest.NewRequest("GET", "/v1/advise?app=Video&platform=aws&c=500&delayms=150", nil)
			s.Handler().ServeHTTP(httptest.NewRecorder(), req)
		}()
	}
	wg.Wait()
	var plans, coalesces int
	for _, b := range rec.Bursts() {
		for _, sp := range b.Spans {
			switch sp.Stage {
			case obs.StagePlan:
				plans++
			case obs.StageCoalesce:
				coalesces++
			}
		}
	}
	if plans != 1 || coalesces != 1 {
		t.Errorf("plan spans = %d, coalesce spans = %d; want 1 and 1", plans, coalesces)
	}
	if got := s.Registry().Counter("http_coalesced_total").Value(); got != 1 {
		t.Errorf("http_coalesced_total = %d", got)
	}
}

func TestREDMetricsLabeled(t *testing.T) {
	s := newTestServer(t, nil)
	get(t, s, adviseURL, nil)                                         // 200 anon
	get(t, s, adviseURL, map[string]string{"X-API-Key": "tenant-a"})  // 200 keyed
	get(t, s, "/v1/advise?app=Video&platform=aws&c=-3", nil)          // 400 anon
	get(t, s, "/v1/plan?app=Video&platform=aws&c=500&degree=2", nil)  // other route

	snap := s.Registry().Snapshot()
	want := map[string]float64{
		`http_route_requests_total{route="advise",code="200",tenant_class="anon"}`:  1,
		`http_route_requests_total{route="advise",code="200",tenant_class="keyed"}`: 1,
		`http_route_requests_total{route="advise",code="400",tenant_class="anon"}`:  1,
		`http_route_requests_total{route="plan",code="200",tenant_class="anon"}`:    1,
	}
	for k, v := range want {
		if snap.Series[k] != v {
			t.Errorf("%s = %v, want %v", k, snap.Series[k], v)
		}
	}
	if hs, ok := snap.HistSeries[`http_route_seconds{route="advise"}`]; !ok || hs.Count != 3 {
		t.Errorf("http_route_seconds{route=advise} = %+v", hs)
	}
	// The raw tenant key must never appear as a label value.
	for k := range snap.Series {
		if strings.Contains(k, "tenant-a") {
			t.Errorf("raw tenant key leaked into series %q", k)
		}
	}
}

// TestTelemetryCardinalityBounded floods the server with adversarial tenant
// keys and checks the label space stays at the two tenant classes.
func TestTelemetryCardinalityBounded(t *testing.T) {
	s := newTestServer(t, nil)
	for i := 0; i < 300; i++ {
		get(t, s, adviseURL, map[string]string{"X-API-Key": fmt.Sprintf("attacker-%d", i)})
	}
	snap := s.Registry().Snapshot()
	classes := map[string]bool{}
	for k := range snap.Series {
		if !strings.HasPrefix(k, "http_route_requests_total{") {
			continue
		}
		classes[k] = true
		if strings.Contains(k, "attacker-") {
			t.Fatalf("attacker key leaked: %q", k)
		}
	}
	if len(classes) > 10 { // routes × codes × {anon,keyed} stays tiny
		t.Errorf("RED series exploded to %d: %v", len(classes), classes)
	}
}

func TestSLORouteAndAccounting(t *testing.T) {
	s := newTestServer(t, nil)
	get(t, s, adviseURL, nil)
	get(t, s, "/v1/advise?app=Video&platform=aws&c=500&panic=1", nil) // 500

	rr, body := get(t, s, "/slo", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("/slo status = %d", rr.Code)
	}
	obj := body["objectives"].(map[string]any)
	if obj["availability"].(float64) != 0.999 {
		t.Errorf("objectives = %v", obj)
	}
	windows := body["windows"].([]any)
	if len(windows) != 4 {
		t.Fatalf("windows = %d", len(windows))
	}
	w0 := windows[0].(map[string]any)
	if w0["total"].(float64) != 2 {
		t.Errorf("5m total = %v, want 2 (the /slo scrape itself is not a /v1 request)", w0["total"])
	}
	if w0["error_rate"].(float64) != 0.5 {
		t.Errorf("error_rate = %v, want 0.5", w0["error_rate"])
	}
}

func TestMetricsRouteServesPrometheus(t *testing.T) {
	s := newTestServer(t, nil) // note: debug NOT enabled; /metrics mounts anyway
	get(t, s, adviseURL, nil)

	req := httptest.NewRequest("GET", "/metrics", nil)
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)
	if ct := rr.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	body := rr.Body.String()
	for _, want := range []string{
		"# TYPE http_route_requests_total counter",
		`http_route_requests_total{route="advise",code="200",tenant_class="anon"} 1`,
		"# TYPE http_route_seconds histogram",
		"# TYPE stage_seconds_plan histogram",
		"# TYPE go_goroutines gauge",
		`breaker_states{state="closed"} 1`,
		`slo_error_rate{window="300s"}`,
		"# TYPE http_shed_total counter", // preregistered despite never firing
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestDisableTelemetry(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.DisableTelemetry = true })
	rr, _ := get(t, s, adviseURL, nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	if rr.Header().Get("X-Request-ID") != "" {
		t.Error("telemetry-disabled server still assigns request IDs")
	}
	snap := s.Registry().Snapshot()
	for k := range snap.Series {
		if strings.HasPrefix(k, "http_route_requests_total{") {
			t.Errorf("telemetry-disabled server recorded RED series %q", k)
		}
	}
	// The legacy scalars still work.
	if snap.Counters["http_requests_total"] != 1 {
		t.Errorf("http_requests_total = %d", snap.Counters["http_requests_total"])
	}
}

// TestTelemetryConcurrentRequests exercises the full instrumented path —
// RED vectors, SLO recording, trace flushing — under the race detector.
func TestTelemetryConcurrentRequests(t *testing.T) {
	rec := &obs.Memory{}
	s := newTestServer(t, func(c *Config) {
		c.Trace = rec
		c.MaxInFlight = 8
		c.MaxQueue = 64
	})
	const workers, perWorker = 8, 15
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				url := fmt.Sprintf("/v1/advise?app=Video&platform=aws&c=500&i=%d", (w*perWorker+i)%4)
				req := httptest.NewRequest("GET", url, nil)
				req.Header.Set("X-API-Key", fmt.Sprintf("t%d", w))
				s.Handler().ServeHTTP(httptest.NewRecorder(), req)
			}
		}(w)
	}
	wg.Wait()

	// Every request produced exactly one burst, and bursts never interleave:
	// each has a full, well-ordered span set.
	bursts := rec.Bursts()
	if len(bursts) != workers*perWorker {
		t.Fatalf("bursts = %d, want %d", len(bursts), workers*perWorker)
	}
	for _, b := range bursts {
		if len(b.Spans) < 3 {
			t.Fatalf("burst %q has %d spans, want ≥3 (interleaved flush?)", b.Info.Label, len(b.Spans))
		}
		if b.Spans[0].Stage != obs.StageLimit || b.Spans[1].Stage != obs.StageAdmit {
			t.Fatalf("burst %q span order broken: %+v", b.Info.Label, b.Spans)
		}
	}
	var total float64
	snap := s.Registry().Snapshot()
	for k, v := range snap.Series {
		if strings.HasPrefix(k, `http_route_requests_total{route="advise"`) {
			total += v
		}
	}
	if int(total) != workers*perWorker {
		t.Errorf("RED total = %v, want %d", total, workers*perWorker)
	}
}
