package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/resilience"
	"repro/internal/workload"
)

// newTestServer builds a server with tight limits, test hooks on, and rate
// limiting off (tests that exercise the limiter opt back in via mutate).
func newTestServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		MaxInFlight:    4,
		MaxQueue:       4,
		RequestTimeout: 5 * time.Second,
		TenantRPS:      -1,
		Seed:           1,
		TestHooks:      true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// get performs one request against the in-process handler.
func get(t *testing.T, s *Server, path string, hdr map[string]string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)
	var body map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("GET %s: non-JSON body %q", path, rr.Body.String())
	}
	return rr, body
}

func TestAdviseMatchesDirectPlanner(t *testing.T) {
	s := newTestServer(t, nil)
	rr, body := get(t, s, "/v1/advise?app=Video&platform=aws&c=2000&ws=0.5", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("advise: status %d: %v", rr.Code, body)
	}
	// The daemon must agree bit-for-bit with the library path at the same seed.
	w := workload.Video{}
	cfg := platform.AWSLambda()
	meas := &core.SimMeasurer{Config: cfg, Demand: w.Demand(), Seed: 1}
	models, _, _, _, err := core.BuildModels(meas, core.ProfileOptionsFor(cfg, w.Demand()))
	if err != nil {
		t.Fatal(err)
	}
	want, err := models.PlanFor(2000, core.Weights{Service: 0.5, Expense: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	plan := body["plan"].(map[string]any)
	if got := int(plan["degree"].(float64)); got != want.Degree {
		t.Fatalf("advise degree = %d, want %d", got, want.Degree)
	}
	if got := plan["predicted_service_sec"].(float64); got != want.PredictedServiceSec {
		t.Fatalf("advise service = %v, want %v", got, want.PredictedServiceSec)
	}
	if body["platform"] != cfg.Name {
		t.Fatalf("platform echo = %v, want %q", body["platform"], cfg.Name)
	}
}

func TestPlanQoSEndpoints(t *testing.T) {
	s := newTestServer(t, nil)
	rr, body := get(t, s, "/v1/plan?app=Video&platform=aws&c=2000&degree=5", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("plan: status %d: %v", rr.Code, body)
	}
	if got := int(body["instances"].(float64)); got != 400 {
		t.Fatalf("plan instances = %d, want 400", got)
	}
	if body["service_sec"].(float64) <= 0 || body["expense_usd"].(float64) <= 0 {
		t.Fatalf("plan predictions not positive: %v", body)
	}

	rr, body = get(t, s, "/v1/qos?app=Xapian&platform=aws&c=2000&qos=120", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("qos: status %d: %v", rr.Code, body)
	}
	plan := body["plan"].(map[string]any)
	if plan["degree"].(float64) < 1 {
		t.Fatalf("qos degree missing: %v", body)
	}
	if body["tail_quantile"].(float64) != 95 {
		t.Fatalf("qos tail quantile = %v, want 95", body["tail_quantile"])
	}
}

func TestJointEndpoint(t *testing.T) {
	s := newTestServer(t, nil)

	// Custom size grid: the daemon must agree bit-for-bit with the library
	// path at the same seed.
	rr, body := get(t, s, "/v1/joint?app=Video&platform=aws&c=2000&ws=0.5&sizes=5120,10240", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("joint: status %d: %v", rr.Code, body)
	}
	cfg := platform.AWSLambda()
	d := workload.Video{}.Demand()
	probes, err := core.GridProbesFor(cfg, d, []float64{5120, 10240}, 1)
	if err != nil {
		t.Fatal(err)
	}
	grid, _, err := core.BuildGridModels(probes)
	if err != nil {
		t.Fatal(err)
	}
	want, err := grid.PlanJointFor(2000, core.Weights{Service: 0.5, Expense: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	plan := body["plan"].(map[string]any)
	if got := int(plan["degree"].(float64)); got != want.Degree {
		t.Fatalf("joint degree = %d, want %d", got, want.Degree)
	}
	if got := body["mem_mb"].(float64); got != want.MemMB {
		t.Fatalf("joint mem_mb = %g, want %g", got, want.MemMB)
	}
	if got := plan["predicted_service_sec"].(float64); got != want.PredictedServiceSec {
		t.Fatalf("joint service = %g, want %g", got, want.PredictedServiceSec)
	}
	if got := len(body["sizes_mb"].([]any)); got != 2 {
		t.Fatalf("joint echoed %d sizes, want 2", got)
	}
	if body["max_degree"].(float64) < 1 {
		t.Fatalf("joint max_degree missing: %v", body)
	}

	// Default grid: quarter steps of the platform's instance memory.
	rr, body = get(t, s, "/v1/joint?app=Video&platform=aws&c=2000", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("joint default sizes: status %d: %v", rr.Code, body)
	}
	if got := len(body["sizes_mb"].([]any)); got != 4 {
		t.Fatalf("default grid has %d sizes, want 4", got)
	}

	// QoS over the grid: weights come from the Sec. 2.6 search.
	rr, body = get(t, s, "/v1/joint?app=Xapian&platform=aws&c=2000&qos=120", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("joint qos: status %d: %v", rr.Code, body)
	}
	if body["tail_quantile"].(float64) != 95 {
		t.Fatalf("joint qos tail quantile = %v", body["tail_quantile"])
	}
	if body["w_service"].(float64) < 0 || body["w_service"].(float64) > 1 {
		t.Fatalf("joint qos weights out of range: %v", body)
	}

	// Bad size grids are client errors, never 500s.
	for _, path := range []string{
		"/v1/joint?app=Video&platform=aws&sizes=abc",
		"/v1/joint?app=Video&platform=aws&sizes=4096,2048",
		"/v1/joint?app=Video&platform=aws&sizes=4096,4096",
		"/v1/joint?app=Video&platform=aws&sizes=-1",
		"/v1/joint?app=Video&platform=aws&sizes=999999999",
	} {
		rr, body := get(t, s, path, nil)
		if rr.Code != http.StatusBadRequest {
			t.Errorf("GET %s: status %d (%v), want 400", path, rr.Code, body)
		}
	}
}

func TestMixedEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	rr, body := get(t, s, "/v1/mixed?app=Video:60&app=Smith-Waterman:60&platform=aws&ws=0.5", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("mixed: status %d: %v", rr.Code, body)
	}
	if body["strategy"] != "mixed" && body["strategy"] != "segregated" {
		t.Fatalf("mixed strategy = %v", body["strategy"])
	}
	bins := body["bins"].([]any)
	if len(bins) == 0 {
		t.Fatal("mixed response has no bins")
	}
	// The run-length encoding must preserve the total instance count.
	total := 0
	for _, b := range bins {
		total += int(b.(map[string]any)["n"].(float64))
	}
	if total != int(body["instances"].(float64)) {
		t.Fatalf("bins sum to %d instances, header says %v", total, body["instances"])
	}
}

func TestBadRequests(t *testing.T) {
	s := newTestServer(t, nil)
	cases := []struct {
		path string
		want int
	}{
		{"/v1/advise?app=NoSuchApp&platform=aws", http.StatusBadRequest},
		{"/v1/advise?app=Video&platform=nowhere", http.StatusBadRequest},
		{"/v1/advise?app=Video&platform=aws&c=zero", http.StatusBadRequest},
		{"/v1/advise?app=Video&platform=aws&c=-5", http.StatusBadRequest},
		{"/v1/advise?app=Video&platform=aws&ws=1.5", http.StatusBadRequest},
		{"/v1/qos?app=Video&platform=aws&c=100", http.StatusBadRequest}, // missing qos
		{"/v1/plan?app=Video&platform=aws&c=100&degree=9999", http.StatusBadRequest},
		{"/v1/mixed?app=Video:100&platform=aws", http.StatusBadRequest},        // one app
		{"/v1/mixed?app=Video&app=Sort:1&platform=aws", http.StatusBadRequest}, // bad spec
	}
	for _, tc := range cases {
		rr, body := get(t, s, tc.path, nil)
		if rr.Code != tc.want {
			t.Errorf("GET %s: status %d (%v), want %d", tc.path, rr.Code, body, tc.want)
		}
		if body["error"] == "" {
			t.Errorf("GET %s: missing error body", tc.path)
		}
	}
	// Wrong method.
	req := httptest.NewRequest("POST", "/v1/advise", strings.NewReader("{}"))
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST advise: status %d, want 405", rr.Code)
	}
	// Client errors must not trip the breaker.
	if got := s.breaker.State(); got != resilience.BreakerClosed {
		t.Fatalf("breaker %v after client errors, want closed", got)
	}
}

func TestPanicRecoveryKeepsServing(t *testing.T) {
	s := newTestServer(t, nil)
	rr, _ := get(t, s, "/v1/advise?app=Video&platform=aws&c=100&panic=1", nil)
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("panic hook: status %d, want 500", rr.Code)
	}
	if got := s.reg.Counter("http_panics_total").Value(); got != 1 {
		t.Fatalf("http_panics_total = %d, want 1", got)
	}
	rr, _ = get(t, s, "/v1/advise?app=Video&platform=aws&c=100", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("request after panic: status %d, want 200", rr.Code)
	}
}

func TestRequestDeadline(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.RequestTimeout = 50 * time.Millisecond })
	rr, body := get(t, s, "/v1/advise?app=Video&platform=aws&c=100&delayms=2000", nil)
	if rr.Code != http.StatusGatewayTimeout {
		t.Fatalf("deadline: status %d (%v), want 504", rr.Code, body)
	}
}

func TestHooksDisabledInProduction(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.TestHooks = false })
	// With hooks off the params are inert: no delay, no panic.
	rr, _ := get(t, s, "/v1/advise?app=Video&platform=aws&c=100&panic=1&delayms=60000", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("hooks off: status %d, want 200", rr.Code)
	}
}

func TestTenantRateLimit(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }
	s := newTestServer(t, func(c *Config) {
		c.TenantRPS = 1
		c.TenantBurst = 2
		c.Clock = clock
	})
	path := "/v1/advise?app=Video&platform=aws&c=100"
	for i := 0; i < 2; i++ {
		if rr, _ := get(t, s, path, nil); rr.Code != http.StatusOK {
			t.Fatalf("burst request %d: status %d", i, rr.Code)
		}
	}
	rr, body := get(t, s, path, nil)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("over-burst: status %d (%v), want 429", rr.Code, body)
	}
	if ra := rr.Header().Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("429 missing Retry-After, got %q", ra)
	}
	// A different tenant has its own bucket.
	if rr, _ := get(t, s, path, map[string]string{"X-API-Key": "tenant-b"}); rr.Code != http.StatusOK {
		t.Fatalf("second tenant: status %d, want 200", rr.Code)
	}
	// Time refills the anonymous bucket.
	advance(2 * time.Second)
	if rr, _ := get(t, s, path, nil); rr.Code != http.StatusOK {
		t.Fatalf("after refill: status %d, want 200", rr.Code)
	}
	if got := s.reg.Counter("http_ratelimited_total").Value(); got != 1 {
		t.Fatalf("http_ratelimited_total = %d, want 1", got)
	}
}

func TestTenantEvictionBounded(t *testing.T) {
	l := newTenantLimiter(10, 10, 3)
	now := time.Unix(1_700_000_000, 0)
	for i := 0; i < 10; i++ {
		l.allow(fmt.Sprintf("tenant-%d", i), now.Add(time.Duration(i)*time.Second))
	}
	if got := l.size(); got != 3 {
		t.Fatalf("limiter size = %d, want capped at 3", got)
	}
	if l.evicted() != 7 {
		t.Fatalf("evictions = %d, want 7", l.evicted())
	}
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestAdmissionShedsOverload(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.MaxInFlight = 1
		c.MaxQueue = 1
	})
	// Warm the model cache so the held request's duration is the hook delay.
	if rr, _ := get(t, s, "/v1/advise?app=Video&platform=aws&c=100", nil); rr.Code != 200 {
		t.Fatal("warmup failed")
	}
	done := make(chan int, 2)
	go func() {
		rr, _ := get(t, s, "/v1/advise?app=Video&platform=aws&c=100&delayms=400&i=1", nil)
		done <- rr.Code
	}()
	waitFor(t, "slot holder in flight", func() bool { return s.adm.inFlight() == 1 })
	go func() {
		rr, _ := get(t, s, "/v1/advise?app=Video&platform=aws&c=100&delayms=400&i=2", nil)
		done <- rr.Code
	}()
	waitFor(t, "queued request", func() bool { return s.adm.queued() == 1 })

	// Capacity 1 busy + queue 1 full → the third request is shed now.
	rr, body := get(t, s, "/v1/advise?app=Video&platform=aws&c=100&i=3", nil)
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("overload: status %d (%v), want 429 shed", rr.Code, body)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if got := s.reg.Counter("http_shed_total").Value(); got != 1 {
		t.Fatalf("http_shed_total = %d, want 1", got)
	}
	// The held and queued requests both complete fine.
	for i := 0; i < 2; i++ {
		if code := <-done; code != http.StatusOK {
			t.Fatalf("in-flight request finished with %d", code)
		}
	}
}

func TestQueueTimeout503(t *testing.T) {
	s := newTestServer(t, nil)
	// Fill all 4 slots with held requests.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			get(t, s, fmt.Sprintf("/v1/advise?app=Video&platform=aws&c=100&delayms=500&i=%d", i), nil)
		}(i)
	}
	waitFor(t, "slots full", func() bool { return s.adm.inFlight() == 4 })
	// A queued request whose client gives up gets a 503, not a hang.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req := httptest.NewRequest("GET", "/v1/advise?app=Video&platform=aws&c=100&i=q", nil).WithContext(ctx)
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("queue timeout: status %d, want 503", rr.Code)
	}
	wg.Wait()
}

func TestCoalescingIdenticalRequests(t *testing.T) {
	s := newTestServer(t, nil)
	if rr, _ := get(t, s, "/v1/advise?app=Video&platform=aws&c=300", nil); rr.Code != 200 {
		t.Fatal("warmup failed")
	}
	builds := s.pool.builds.Load()
	const herd = 8
	var wg sync.WaitGroup
	codes := make([]int, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Identical path (delay forces overlap): one compute, herd−1 waits.
			rr, _ := get(t, s, "/v1/advise?app=Video&platform=aws&c=300&delayms=150", nil)
			codes[i] = rr.Code
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("herd request %d: status %d", i, code)
		}
	}
	if got := s.reg.Counter("http_coalesced_total").Value(); got == 0 {
		t.Fatal("no coalescing observed for an identical herd")
	}
	if got := s.pool.builds.Load(); got != builds {
		t.Fatalf("herd rebuilt models: %d new builds", got-builds)
	}
}

func TestBreakerOpensOnSlowPlanner(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Breaker = resilience.BreakerConfig{
			Window: 10 * time.Second, MinSamples: 3,
			SlowCallSec: 0.01, TripSlowRate: 0.5,
			CoolDown: time.Hour, // stays open for the rest of the test
		}
	})
	for i := 0; i < 3; i++ {
		rr, _ := get(t, s, fmt.Sprintf("/v1/advise?app=Video&platform=aws&c=100&delayms=30&i=%d", i), nil)
		if rr.Code != http.StatusOK {
			t.Fatalf("slow request %d: status %d", i, rr.Code)
		}
	}
	rr, body := get(t, s, "/v1/advise?app=Video&platform=aws&c=100", nil)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("open breaker: status %d (%v), want 503", rr.Code, body)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("breaker rejection missing Retry-After")
	}
	if got := s.reg.Counter("breaker_rejected_total").Value(); got != 1 {
		t.Fatalf("breaker_rejected_total = %d, want 1", got)
	}
}

func TestHealthAndDebugRoutes(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.EnableDebug = true })
	rr, body := get(t, s, "/healthz", nil)
	if rr.Code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz: %d %v", rr.Code, body)
	}
	rr, body = get(t, s, "/readyz", nil)
	if rr.Code != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Fatalf("readyz before Run: %d %v, want 503 draining", rr.Code, body)
	}
	s.SetReady(true)
	rr, body = get(t, s, "/readyz", nil)
	if rr.Code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("readyz after SetReady: %d %v", rr.Code, body)
	}
	// Debug mux mounted on the same handler.
	req := httptest.NewRequest("GET", "/metrics", nil)
	mrr := httptest.NewRecorder()
	s.Handler().ServeHTTP(mrr, req)
	if mrr.Code != http.StatusOK {
		t.Fatalf("/metrics: status %d", mrr.Code)
	}
}

// TestGracefulDrainLossless runs the real listener path: cancel Run with a
// request in flight and assert the request completes, readiness flips
// during the grace period, and Run exits nil.
func TestGracefulDrainLossless(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.DrainGrace = 200 * time.Millisecond
		c.DrainTimeout = 5 * time.Second
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- s.Run(ctx, ln) }()
	waitFor(t, "server ready", func() bool { return s.Ready() })

	// Launch a slow request, then start the drain while it is in flight.
	type result struct {
		code int
		err  error
	}
	slow := make(chan result, 1)
	go func() {
		resp, err := http.Get(base + "/v1/advise?app=Video&platform=aws&c=100&delayms=600")
		if err != nil {
			slow <- result{0, err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		slow <- result{resp.StatusCode, nil}
	}()
	waitFor(t, "slow request in flight", func() bool { return s.adm.inFlight() == 1 })
	cancel()

	// During the grace window the listener still answers and /readyz says 503.
	waitFor(t, "readiness flipped", func() bool { return !s.Ready() })
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatalf("readyz during grace: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during grace: status %d, want 503", resp.StatusCode)
	}

	// The in-flight request is never dropped.
	r := <-slow
	if r.err != nil || r.code != http.StatusOK {
		t.Fatalf("in-flight request during drain: code %d err %v", r.code, r.err)
	}
	if err := <-runErr; err != nil {
		t.Fatalf("Run returned %v, want nil after clean drain", err)
	}
}

func TestFlightGroupFollowerTimeout(t *testing.T) {
	var g flightGroup
	leaderGo := make(chan struct{})
	go g.Do(context.Background(), "k", func() (any, error) {
		close(leaderGo)
		time.Sleep(300 * time.Millisecond)
		return "late", nil
	})
	<-leaderGo
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err, shared := g.Do(ctx, "k", func() (any, error) { return "never", nil })
	if !shared || err == nil {
		t.Fatalf("follower: shared=%v err=%v, want shared timeout", shared, err)
	}
}
