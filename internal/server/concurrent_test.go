package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestServeConcurrentStress hammers every endpoint from many goroutines at
// once. Its name contains "Concurrent" so CI's race-stress job
// (go test -race -run Concurrent) picks it up: the point is to drive the
// admission semaphore, tenant limiter, coalescer, breaker, and planner pool
// simultaneously under the race detector. Functionally it asserts that the
// server only ever answers with its documented statuses and that the
// admission accounting returns to zero.
func TestServeConcurrentStress(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.MaxInFlight = 4
		c.MaxQueue = 8
		c.TenantRPS = 1000 // enabled, but high enough to exercise the path without dominating
		c.TenantBurst = 1000
	})
	paths := []string{
		"/v1/advise?app=Video&platform=aws&c=500",
		"/v1/advise?app=Sort&platform=google&c=200&ws=0.8",
		"/v1/plan?app=Video&platform=aws&c=500&degree=4",
		"/v1/qos?app=Video&platform=aws&c=500&qos=200",
		"/v1/mixed?app=Video:40&app=Sort:40&platform=aws",
		"/healthz",
		"/readyz",
	}
	const (
		workers = 16
		iters   = 30
	)
	var (
		wg     sync.WaitGroup
		badMu  sync.Mutex
		bad    []string
		served atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				path := paths[(w+i)%len(paths)]
				// Half the traffic is unique (nonce), half coalescable.
				if i%2 == 0 {
					sep := "&"
					if !strings.Contains(path, "?") {
						sep = "?"
					}
					path += fmt.Sprintf("%si=%d-%d", sep, w, i)
				}
				req := httptest.NewRequest("GET", path, nil)
				req.Header.Set("X-API-Key", fmt.Sprintf("tenant-%d", w%3))
				rr := httptest.NewRecorder()
				s.Handler().ServeHTTP(rr, req)
				served.Add(1)
				switch rr.Code {
				case http.StatusOK, http.StatusTooManyRequests,
					http.StatusServiceUnavailable, http.StatusGatewayTimeout:
				default:
					badMu.Lock()
					bad = append(bad, fmt.Sprintf("%s -> %d: %s", path, rr.Code, rr.Body.String()))
					badMu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	if len(bad) > 0 {
		t.Fatalf("unexpected statuses under stress (%d):\n%s", len(bad), bad[0])
	}
	if got := served.Load(); got != workers*iters {
		t.Fatalf("served %d requests, want %d", got, workers*iters)
	}
	// All slots and queue positions released.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s.adm.inFlight() == 0 && s.adm.queued() == 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if fl, q := s.adm.inFlight(), s.adm.queued(); fl != 0 || q != 0 {
		t.Fatalf("leaked admission state: inflight=%d queued=%d", fl, q)
	}
}

// TestFlightGroupConcurrentKeys drives the coalescer with many goroutines
// over few keys under -race: every caller must see the same (val, err) as
// its leader and the map must drain.
func TestFlightGroupConcurrentKeys(t *testing.T) {
	var g flightGroup
	var calls atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%4)
				v, err, _ := g.Do(t.Context(), key, func() (any, error) {
					calls.Add(1)
					return key, nil
				})
				if err != nil || v.(string) != key {
					t.Errorf("Do(%s) = %v, %v", key, v, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	total := int64(32 * 200)
	if c := calls.Load(); c > total {
		t.Fatalf("leader ran %d times for %d calls", c, total)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.m) != 0 {
		t.Fatalf("flight map not drained: %d entries", len(g.m))
	}
}

// TestTenantLimiterConcurrent pounds one limiter from many goroutines with
// overlapping tenants so -race covers the refill/evict paths.
func TestTenantLimiterConcurrent(t *testing.T) {
	l := newTenantLimiter(100, 100, 8)
	base := time.Unix(1_700_000_000, 0)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.allow(fmt.Sprintf("t%d", (w+i)%12), base.Add(time.Duration(i)*time.Millisecond))
			}
		}(w)
	}
	wg.Wait()
	if got := l.size(); got > 8 {
		t.Fatalf("limiter grew past cap: %d tenants", got)
	}
}
