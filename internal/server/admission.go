package server

import (
	"context"
	"sync/atomic"
)

// Admission control: a bounded in-flight semaphore with a queue-depth
// watermark. The failure mode this guards against is the classic goroutine
// pile-up — under overload an unbounded server accepts everything, every
// request slows down, memory grows, and eventually *all* requests miss
// their deadlines. Bounding in-flight work keeps the admitted requests
// fast; bounding the queue keeps waiting cheap and turns the excess into
// immediate, honest 429s the client can back off on.

// admitStatus is the outcome of an admission attempt.
type admitStatus int

const (
	// admitOK: a slot was acquired; call release when done.
	admitOK admitStatus = iota
	// admitShed: capacity and queue are full — shed with 429.
	admitShed
	// admitTimeout: the request's context expired while queued.
	admitTimeout
)

type admission struct {
	sem      chan struct{}
	waiting  atomic.Int64
	maxQueue int64
}

func newAdmission(capacity, maxQueue int) *admission {
	return &admission{sem: make(chan struct{}, capacity), maxQueue: int64(maxQueue)}
}

// acquire claims an execution slot. The fast path never queues; the slow
// path queues until the watermark, then sheds. release must be called
// exactly once iff the status is admitOK.
func (a *admission) acquire(ctx context.Context) (release func(), st admitStatus) {
	select {
	case a.sem <- struct{}{}:
		return a.release, admitOK
	default:
	}
	if a.waiting.Add(1) > a.maxQueue {
		a.waiting.Add(-1)
		return nil, admitShed
	}
	defer a.waiting.Add(-1)
	select {
	case a.sem <- struct{}{}:
		return a.release, admitOK
	case <-ctx.Done():
		return nil, admitTimeout
	}
}

func (a *admission) release() { <-a.sem }

// inFlight reports the currently executing request count.
func (a *admission) inFlight() int { return len(a.sem) }

// queued reports the current queue depth.
func (a *admission) queued() int64 { return a.waiting.Load() }
