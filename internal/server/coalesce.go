package server

import (
	"context"
	"fmt"
	"sync"
)

// Request coalescing (singleflight): concurrent requests with an identical
// canonical key share one computation. This layers over core's sharded
// TableCache — the cache already coalesces same-concurrency table builds,
// but the daemon also wants to collapse the full request computation
// (model lookup + plan + response assembly), and to do it across
// endpoints that the cache cannot see (e.g. /v1/mixed's profiling
// pipeline). A thundering herd of identical advise calls costs one
// planner invocation.

type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

// Do executes fn once per key among concurrent callers: the first caller
// (the leader) runs it, the rest wait for the leader's result. shared
// reports whether this caller got a coalesced result. A waiting follower
// whose ctx expires returns ctx.Err() without cancelling the leader. If fn
// panics, followers get an error and the panic resumes on the leader's
// goroutine (the per-handler recovery turns it into a 500).
func (g *flightGroup) Do(ctx context.Context, key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, c.err, true
		case <-ctx.Done():
			return nil, ctx.Err(), true
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	panicked := true
	defer func() {
		if panicked {
			c.err = fmt.Errorf("server: coalesced computation panicked")
		}
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = fn()
	panicked = false
	return c.val, c.err, false
}
