package server

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// Closed-loop load generator for the daemon: N clients each keep exactly
// one request in flight, so offered load is clients/latency and overload is
// expressed as clients ≫ admission capacity. This is both the bench driver
// behind BENCH_SERVE.json and the overload harness for the shed-rate
// acceptance test (shed requests must get fast 429s while admitted
// requests keep a sane tail).

// LoadgenOptions configures one closed-loop run.
type LoadgenOptions struct {
	// URL is the target endpoint including query parameters; the generator
	// appends a per-request nonce (&i=<n>) so identical requests do not
	// coalesce and each one exercises the full path.
	URL string
	// Clients is the closed-loop concurrency.
	Clients int
	// Requests is the total request budget across clients.
	Requests int
	// Client overrides the HTTP client (nil: 30 s timeout, default transport).
	Client *http.Client
}

// LatencySummary is the percentile digest of one outcome class.
type LatencySummary struct {
	N       int     `json:"n"`
	MeanSec float64 `json:"mean_sec"`
	P50Sec  float64 `json:"p50_sec"`
	P95Sec  float64 `json:"p95_sec"`
	P99Sec  float64 `json:"p99_sec"`
	MaxSec  float64 `json:"max_sec"`
}

func summarize(durs []float64) LatencySummary {
	if len(durs) == 0 {
		return LatencySummary{}
	}
	sort.Float64s(durs)
	var sum float64
	for _, d := range durs {
		sum += d
	}
	return LatencySummary{
		N:       len(durs),
		MeanSec: sum / float64(len(durs)),
		P50Sec:  stats.QuantileSorted(durs, 50),
		P95Sec:  stats.QuantileSorted(durs, 95),
		P99Sec:  stats.QuantileSorted(durs, 99),
		MaxSec:  durs[len(durs)-1],
	}
}

// LoadgenResult is one closed-loop run's outcome record (the shape stored
// in BENCH_SERVE.json).
type LoadgenResult struct {
	Clients       int     `json:"clients"`
	Requests      int     `json:"requests"`
	OK            int     `json:"ok"`
	Shed          int     `json:"shed"`        // 429 (admission or rate limit)
	Unavailable   int     `json:"unavailable"` // 503 (queue timeout, breaker, drain)
	Failed        int     `json:"failed"`      // transport errors and other statuses
	DurationSec   float64 `json:"duration_sec"`
	ThroughputRPS float64 `json:"throughput_rps"`
	ShedRate      float64 `json:"shed_rate"`
	// Admitted summarizes latencies of 200s only — the tail that admission
	// control promises to protect. Rejected summarizes the 429/503 fast
	// path, which must stay cheap for shedding to mean anything.
	Admitted LatencySummary `json:"admitted"`
	Rejected LatencySummary `json:"rejected"`
}

// RunLoadgen drives the closed loop and aggregates outcomes.
func RunLoadgen(opts LoadgenOptions) (LoadgenResult, error) {
	if opts.Clients < 1 || opts.Requests < 1 {
		return LoadgenResult{}, fmt.Errorf("server: loadgen needs clients ≥ 1 and requests ≥ 1")
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	var (
		next     atomic.Int64
		mu       sync.Mutex
		admitted []float64
		rejected []float64
		res      LoadgenResult
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i > int64(opts.Requests) {
					return
				}
				t0 := time.Now()
				status, err := fetch(client, fmt.Sprintf("%s&i=%d", opts.URL, i))
				dur := time.Since(t0).Seconds()
				mu.Lock()
				switch {
				case err != nil:
					res.Failed++
				case status == http.StatusOK:
					res.OK++
					admitted = append(admitted, dur)
				case status == http.StatusTooManyRequests:
					res.Shed++
					rejected = append(rejected, dur)
				case status == http.StatusServiceUnavailable:
					res.Unavailable++
					rejected = append(rejected, dur)
				default:
					res.Failed++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	res.Clients = opts.Clients
	res.Requests = opts.Requests
	res.DurationSec = time.Since(start).Seconds()
	if res.DurationSec > 0 {
		res.ThroughputRPS = float64(opts.Requests) / res.DurationSec
	}
	res.ShedRate = float64(res.Shed+res.Unavailable) / float64(opts.Requests)
	res.Admitted = summarize(admitted)
	res.Rejected = summarize(rejected)
	return res, nil
}

func fetch(client *http.Client, url string) (int, error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	_, err = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, err
}
