package server

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"
)

// -record regenerates BENCH_SERVE.json at the repo root from this run's
// overload experiment (same convention as the goldens' -update flag):
//
//	go test ./internal/server/ -run TestOverloadShedding -record
var record = flag.Bool("record", false, "rewrite BENCH_SERVE.json from this run")

// --- Direct handler benches -------------------------------------------------

func benchEndpoint(b *testing.B, path string) {
	b.Helper()
	benchEndpointCfg(b, path, Config{TenantRPS: -1, Seed: 1})
}

func benchEndpointCfg(b *testing.B, path string, cfg Config) {
	b.Helper()
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the planner pool so iterations measure the serving path, not the
	// one-time model build.
	warm := httptest.NewRequest("GET", path, nil)
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, warm)
	if rr.Code != http.StatusOK {
		b.Fatalf("warmup %s: status %d: %s", path, rr.Code, rr.Body.String())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("GET", fmt.Sprintf("%s&i=%d", path, i), nil)
		rr := httptest.NewRecorder()
		s.Handler().ServeHTTP(rr, req)
		if rr.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rr.Code, rr.Body.String())
		}
	}
}

func BenchmarkServeAdvise(b *testing.B) {
	benchEndpoint(b, "/v1/advise?app=Video&platform=aws&c=2000")
}

// BenchmarkServeAdviseBare is the same path with the per-request telemetry
// middleware stripped — the A side of the telemetry-overhead delta that
// TestTelemetryOverhead records into BENCH_SERVE.json.
func BenchmarkServeAdviseBare(b *testing.B) {
	benchEndpointCfg(b, "/v1/advise?app=Video&platform=aws&c=2000",
		Config{TenantRPS: -1, Seed: 1, DisableTelemetry: true})
}

func BenchmarkServeQoS(b *testing.B) {
	benchEndpoint(b, "/v1/qos?app=Video&platform=aws&c=2000&qos=200")
}

func BenchmarkServeMixed(b *testing.B) {
	benchEndpoint(b, "/v1/mixed?app=Video:60&app=Smith-Waterman:60&platform=aws")
}

// --- Overload acceptance experiment ----------------------------------------

// benchServeRecord is the BENCH_SERVE.json schema. The overload experiment
// and the telemetry-overhead experiment each rewrite only their own section
// under -record, preserving the other's.
type benchServeRecord struct {
	Description string                   `json:"description"`
	Date        string                   `json:"date"`
	Config      benchServeConfig         `json:"config"`
	Uncontended LoadgenResult            `json:"uncontended"`
	Overload    LoadgenResult            `json:"overload"`
	Criteria    benchServeCriteria       `json:"criteria"`
	Telemetry   *telemetryOverheadRecord `json:"telemetry,omitempty"`
}

// telemetryOverheadRecord is the ISSUE acceptance delta: BenchmarkServeAdvise
// with the instrumentation middleware on vs. off.
type telemetryOverheadRecord struct {
	Description         string  `json:"description"`
	Date                string  `json:"date"`
	BareNsPerOp         int64   `json:"bare_ns_per_op"`
	InstrumentedNsPerOp int64   `json:"instrumented_ns_per_op"`
	OverheadNsPerOp     int64   `json:"overhead_ns_per_op"`
	OverheadPct         float64 `json:"overhead_pct"`
	BudgetPct           float64 `json:"budget_pct"`
	Pass                bool    `json:"pass"`
}

// benchServePath is the repo-root location of BENCH_SERVE.json relative to
// this package.
const benchServePath = "../../BENCH_SERVE.json"

// loadBenchServeRecord reads the current BENCH_SERVE.json (zero record if
// absent), so -record writers preserve the sections they don't own.
func loadBenchServeRecord(t *testing.T) benchServeRecord {
	t.Helper()
	var rec benchServeRecord
	buf, err := os.ReadFile(benchServePath)
	if err != nil {
		return rec
	}
	if err := json.Unmarshal(buf, &rec); err != nil {
		t.Fatalf("existing BENCH_SERVE.json unreadable: %v", err)
	}
	return rec
}

func writeBenchServeRecord(t *testing.T, rec benchServeRecord) {
	t.Helper()
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(benchServePath, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_SERVE.json")
}

type benchServeConfig struct {
	MaxInFlight  int     `json:"max_in_flight"`
	MaxQueue     int     `json:"max_queue"`
	ServiceMS    int     `json:"synthetic_service_ms"`
	OverloadMult float64 `json:"overload_multiplier"`
}

type benchServeCriteria struct {
	ShedGot429        bool    `json:"shed_got_429"`
	AdmittedP99Ratio  float64 `json:"admitted_p99_ratio"`
	AdmittedP99Within float64 `json:"admitted_p99_budget"`
	Pass              bool    `json:"pass"`
}

// TestOverloadShedding is the ISSUE acceptance experiment: drive the daemon
// at ≥4× its admission capacity and check that (a) excess load is shed with
// 429s, and (b) the p99 of admitted requests stays within 5× the
// uncontended p99 — i.e. shedding actually protects the served tail instead
// of letting queues soak it. With -record the measured numbers are written
// to BENCH_SERVE.json.
func TestOverloadShedding(t *testing.T) {
	if testing.Short() {
		t.Skip("loadgen experiment; skipped in -short")
	}
	const (
		maxInFlight = 4
		maxQueue    = 4
		serviceMS   = 20 // synthetic per-request service time via the delayms hook
	)
	s := newTestServer(t, func(c *Config) {
		c.MaxInFlight = maxInFlight
		c.MaxQueue = maxQueue
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runErr := make(chan error, 1)
	go func() { runErr <- s.Run(ctx, ln) }()
	waitFor(t, "server ready", func() bool { return s.Ready() })

	url := fmt.Sprintf("http://%s/v1/advise?app=Video&platform=aws&c=500&delayms=%d",
		ln.Addr().String(), serviceMS)
	// Warm the planner pool outside the measurement.
	if code, err := fetch(http.DefaultClient, url+"&i=warm"); err != nil || code != 200 {
		t.Fatalf("warmup: code %d err %v", code, err)
	}

	uncontended, err := RunLoadgen(LoadgenOptions{URL: url, Clients: 1, Requests: 50})
	if err != nil {
		t.Fatal(err)
	}
	if uncontended.OK != uncontended.Requests {
		t.Fatalf("uncontended run shed traffic: %+v", uncontended)
	}

	// Admission capacity is maxInFlight+maxQueue concurrent requests; drive
	// 4× that with closed-loop clients.
	capacity := maxInFlight + maxQueue
	overload, err := RunLoadgen(LoadgenOptions{URL: url, Clients: 4 * capacity, Requests: 600})
	if err != nil {
		t.Fatal(err)
	}
	if overload.Shed == 0 {
		t.Fatalf("no 429s under 4x overload: %+v", overload)
	}
	if overload.OK == 0 {
		t.Fatalf("no admitted requests under overload: %+v", overload)
	}
	if overload.Failed > 0 {
		t.Fatalf("%d transport failures under overload: %+v", overload.Failed, overload)
	}
	ratio := overload.Admitted.P99Sec / uncontended.Admitted.P99Sec
	const budget = 5.0
	if ratio > budget {
		t.Fatalf("admitted p99 degraded %.1fx under overload (uncontended %.4fs, overload %.4fs); budget %.0fx",
			ratio, uncontended.Admitted.P99Sec, overload.Admitted.P99Sec, budget)
	}
	// Rejections must be cheaper than service: the shed fast path never
	// waits on the queue or the planner. (Relative bound, so the check
	// holds under the race detector's uniform slowdown too.)
	if overload.Rejected.P99Sec > overload.Admitted.P99Sec {
		t.Fatalf("shed fast-path p99 %.4fs exceeds admitted p99 %.4fs",
			overload.Rejected.P99Sec, overload.Admitted.P99Sec)
	}
	t.Logf("uncontended p99 %.4fs; overload: ok=%d shed=%d unavailable=%d admitted p99 %.4fs (%.2fx), rejected p99 %.4fs",
		uncontended.Admitted.P99Sec, overload.OK, overload.Shed, overload.Unavailable,
		overload.Admitted.P99Sec, ratio, overload.Rejected.P99Sec)

	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("Run: %v", err)
	}

	if *record {
		rec := loadBenchServeRecord(t)
		rec.Description = "propack serve overload experiment: closed-loop load generator (internal/server/loadgen.go) against the real daemon with synthetic 20ms service time (delayms test hook). 'uncontended' is 1 client; 'overload' is 4x admission capacity (MaxInFlight+MaxQueue) clients. Acceptance: excess load shed with 429s while admitted p99 stays within 5x uncontended p99. Regenerate: go test ./internal/server/ -run TestOverloadShedding -record"
		rec.Date = time.Now().Format("2006-01-02")
		rec.Config = benchServeConfig{
			MaxInFlight: maxInFlight, MaxQueue: maxQueue,
			ServiceMS: serviceMS, OverloadMult: 4,
		}
		rec.Uncontended = uncontended
		rec.Overload = overload
		rec.Criteria = benchServeCriteria{
			ShedGot429:        overload.Shed > 0,
			AdmittedP99Ratio:  ratio,
			AdmittedP99Within: budget,
			Pass:              overload.Shed > 0 && ratio <= budget,
		}
		writeBenchServeRecord(t, rec)
	}
}

// --- Telemetry overhead experiment ------------------------------------------

// TestTelemetryOverhead measures the per-request cost of the telemetry
// middleware (request IDs, RED vectors, SLO accounting, stage histograms) as
// an on/off delta over the advise hot path, and checks it stays within the
// ISSUE budget: ≤10% of the bare request cost (with a 2 µs absolute floor so
// sub-microsecond noise on a fast machine cannot flake the build). With
// -record the measured delta is written into BENCH_SERVE.json's "telemetry"
// section.
func TestTelemetryOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark experiment; skipped in -short")
	}
	// Interleaved best-of-rounds: two sequential 1 s benchmark runs on a
	// shared CI box can disagree by 20% from frequency scaling and GC debt
	// alone, which would swamp the delta being measured. Alternating short
	// rounds and comparing the best round of each side cancels that noise.
	const path = "/v1/advise?app=Video&platform=aws&c=2000"
	newSrv := func(disable bool) *Server {
		s, err := New(Config{TenantRPS: -1, Seed: 1, DisableTelemetry: disable})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	run := func(s *Server, iters int) int64 {
		start := time.Now()
		for i := 0; i < iters; i++ {
			req := httptest.NewRequest("GET", fmt.Sprintf("%s&i=%d", path, i), nil)
			rr := httptest.NewRecorder()
			s.Handler().ServeHTTP(rr, req)
			if rr.Code != http.StatusOK {
				t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
			}
		}
		return time.Since(start).Nanoseconds() / int64(iters)
	}
	bareSrv, instSrv := newSrv(true), newSrv(false)
	const iters, rounds = 2000, 8
	run(bareSrv, 50) // warm the planner pools outside the measurement
	run(instSrv, 50)
	bareNs, instNs := int64(1<<62), int64(1<<62)
	for r := 0; r < rounds; r++ {
		bareNs = min(bareNs, run(bareSrv, iters))
		instNs = min(instNs, run(instSrv, iters))
	}
	overheadNs := instNs - bareNs
	overheadPct := float64(overheadNs) / float64(bareNs) * 100
	const budgetPct, floorNs = 10.0, 2000
	pass := overheadNs <= floorNs || overheadPct <= budgetPct
	t.Logf("bare %d ns/op, instrumented %d ns/op, overhead %d ns/op (%.1f%%)",
		bareNs, instNs, overheadNs, overheadPct)
	if !pass {
		t.Errorf("telemetry overhead %.1f%% (%d ns/op) exceeds %g%% budget",
			overheadPct, overheadNs, budgetPct)
	}

	if *record {
		rec := loadBenchServeRecord(t)
		rec.Telemetry = &telemetryOverheadRecord{
			Description:         "Per-request telemetry overhead: BenchmarkServeAdvise (advise hot path, warm planner pool) with the instrumentation middleware on vs. DisableTelemetry. Overhead covers request-ID assignment, RED counter/histogram vectors, SLO accounting, and guard-stage span capture. Budget: <=10% of the bare request cost. Regenerate: go test ./internal/server/ -run TestTelemetryOverhead -record",
			Date:                time.Now().Format("2006-01-02"),
			BareNsPerOp:         bareNs,
			InstrumentedNsPerOp: instNs,
			OverheadNsPerOp:     overheadNs,
			OverheadPct:         overheadPct,
			BudgetPct:           budgetPct,
			Pass:                pass,
		}
		writeBenchServeRecord(t, rec)
	}
}
