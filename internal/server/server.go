// Package server implements the `propack serve` daemon: the planner as a
// long-running HTTP/JSON service, so many applications share one planner
// fleet instead of paying the modeling pipeline per CLI invocation.
//
// The API surface is deliberately small — /v1/advise, /v1/plan, /v1/qos,
// /v1/joint and /v1/mixed mirror the CLI subcommands, /healthz and /readyz
// speak to load balancers, and obs.DebugMux's pprof/expvar/metrics routes
// mount on the same listener. The bulk of the package is the robustness layer wrapped
// around the shared propack planner:
//
//   - admission control: a bounded in-flight semaphore with a queue-depth
//     watermark; excess load is shed with 429 + Retry-After before
//     goroutines pile up (fail fast beats fail slow);
//   - per-tenant token-bucket rate limits keyed on the API key header,
//     with a default bucket for anonymous callers;
//   - per-request deadlines propagated via context, per-handler panic
//     recovery, and a resilience.Breaker guarding the planner path;
//   - request coalescing: identical in-flight planning requests collapse
//     into one computation (singleflight), layered over core's sharded
//     TableCache so a thundering herd of identical advises costs one
//     table build;
//   - graceful drain: Run flips /readyz to 503 on context cancellation,
//     optionally keeps serving through a grace period so load balancers
//     notice, then drains in-flight requests under a deadline. No admitted
//     request is ever dropped by a drain.
//
// Every limiter decision and request outcome is surfaced through an
// obs.Registry, so the /metrics route shows shed rates, queue depths,
// breaker state, and per-endpoint latency histograms live.
package server

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
)

// Config tunes the daemon. The zero value is usable: every field documents
// its default.
type Config struct {
	// MaxInFlight bounds concurrently executing requests (admission
	// capacity). Zero means 32.
	MaxInFlight int
	// MaxQueue is the watermark on requests waiting for an admission slot;
	// beyond it new arrivals are shed immediately. Zero means 2×MaxInFlight.
	MaxQueue int
	// RequestTimeout is the per-request deadline, propagated via context.
	// Zero means 10 s.
	RequestTimeout time.Duration
	// ShedRetryAfter is the Retry-After hint on shed (429) responses.
	// Zero means 1 s.
	ShedRetryAfter time.Duration

	// TenantRPS and TenantBurst shape each tenant's token bucket. Zero
	// means 50 req/s with a burst of 100. A negative TenantRPS disables
	// rate limiting (used by benchmarks).
	TenantRPS   float64
	TenantBurst float64
	// MaxTenants bounds the limiter table; the least-recently-seen bucket
	// is evicted beyond it. Zero means 4096.
	MaxTenants int

	// Breaker configures the circuit breaker on the planner path. The zero
	// value takes resilience.DefaultBreakerConfig with a latency budget of
	// half the request timeout.
	Breaker resilience.BreakerConfig

	// DrainGrace keeps the listener serving (with /readyz already 503)
	// after shutdown begins, so load balancers stop routing before
	// connections start draining. Zero means no grace period.
	DrainGrace time.Duration
	// DrainTimeout bounds the drain; in-flight requests past it are cut.
	// Zero means 30 s.
	DrainTimeout time.Duration

	// Seed is the deterministic simulation seed behind every model build.
	// Zero means 1.
	Seed int64

	// Reg receives request metrics; nil creates a fresh registry.
	Reg *obs.Registry
	// Log receives structured logs; nil discards them.
	Log *slog.Logger
	// AccessLog receives one structured line per /v1 request (request ID,
	// route, status, tenant class, duration). Nil disables access logging —
	// the metrics and trace stream carry the same signal without the
	// per-request formatting cost.
	AccessLog *slog.Logger
	// Trace receives one burst per /v1 request — guard-stage spans labeled
	// with the request ID — in the same typed stream the simulator emits.
	// Nil disables request tracing (stage histograms still populate).
	Trace obs.Recorder
	// SLO configures the /slo tracker's objectives and windows; the zero
	// value takes obs defaults (99.9% availability, 95% < 250 ms). The
	// tracker's clock follows Config.Clock.
	SLO obs.SLOConfig
	// DisableTelemetry strips the per-request instrumentation middleware
	// (request IDs, RED metrics, SLO accounting, spans). Only the telemetry
	// overhead benchmark should set this.
	DisableTelemetry bool
	// EnableDebug mounts obs.DebugMux (pprof, expvar) on the service mux.
	// The /metrics and /slo routes are always mounted.
	EnableDebug bool

	// TestHooks enables the `delayms` and `panic` query parameters that the
	// e2e drain/overload tests (and the load generator) use to give
	// requests a controllable duration. Never enable in production.
	TestHooks bool

	// Clock overrides time.Now for the limiter and breaker, so tests drive
	// them without sleeping. Nil means time.Now.
	Clock func() time.Time
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 32
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 2 * c.MaxInFlight
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.ShedRetryAfter <= 0 {
		c.ShedRetryAfter = time.Second
	}
	if c.TenantRPS == 0 {
		c.TenantRPS = 50
	}
	if c.TenantBurst <= 0 {
		c.TenantBurst = 100
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 4096
	}
	if c.Breaker == (resilience.BreakerConfig{}) {
		c.Breaker = resilience.DefaultBreakerConfig()
		c.Breaker.SlowCallSec = (c.RequestTimeout / 2).Seconds()
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Reg == nil {
		c.Reg = obs.NewRegistry()
	}
	if c.Log == nil {
		c.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.SLO.Clock == nil {
		c.SLO.Clock = c.Clock
	}
	return c
}

// Server is the planner-as-a-service daemon. Build with New, serve with
// Run (or mount Handler on a listener of your own).
type Server struct {
	cfg     Config
	reg     *obs.Registry
	log     *slog.Logger
	mux     *http.ServeMux
	adm     *admission
	tenants *tenantLimiter
	breaker *resilience.Breaker
	flights flightGroup
	pool    *plannerPool
	slo     *obs.SLO
	tel     *telemetry
	ready   atomic.Bool
}

// New builds a server from the config.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	br, err := resilience.NewBreaker(cfg.Breaker)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Reg,
		log:     cfg.Log,
		mux:     http.NewServeMux(),
		adm:     newAdmission(cfg.MaxInFlight, cfg.MaxQueue),
		tenants: newTenantLimiter(cfg.TenantRPS, cfg.TenantBurst, cfg.MaxTenants),
		breaker: br,
		pool:    newPlannerPool(cfg.Seed),
		slo:     obs.NewSLO(cfg.SLO),
	}
	if !cfg.DisableTelemetry {
		s.tel = newTelemetry(cfg, s.slo)
	}
	route := func(name string, fn computeFn) http.Handler {
		h := s.endpoint(name, fn)
		if s.tel != nil {
			h = s.tel.instrument(name, h)
		}
		return h
	}
	s.mux.Handle("/v1/advise", route("advise", s.computeAdvise))
	s.mux.Handle("/v1/plan", route("plan", s.computePlan))
	s.mux.Handle("/v1/qos", route("qos", s.computeQoS))
	s.mux.Handle("/v1/joint", route("joint", s.computeJoint))
	s.mux.Handle("/v1/mixed", route("mixed", s.computeMixed))
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	s.mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if s.ready.Load() {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
			return
		}
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	})
	s.mux.Handle("/metrics", obs.MetricsHandler(cfg.Reg))
	s.mux.HandleFunc("/slo", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, s.slo.Status())
	})
	if cfg.EnableDebug {
		s.mux.Handle("/debug/", obs.DebugMux(cfg.Reg))
	}
	s.reg.RegisterCollector(obs.GoRuntimeCollector())
	s.reg.RegisterCollector(obs.SLOCollector(s.slo))
	s.reg.RegisterCollector(s.breakerCollector())
	s.preregister()
	return s, nil
}

// breakerCollector mirrors the breaker into the registry at scrape time: the
// numeric breaker_state gauge (kept for existing dashboards), a one-hot
// breaker_states{state} vector, and the cumulative trip count.
func (s *Server) breakerCollector() obs.Collector {
	return func(r *obs.Registry) {
		cur := s.breaker.State()
		r.Gauge("breaker_state").Set(float64(cur))
		vec := r.GaugeVec("breaker_states", "state")
		for _, st := range resilience.BreakerStates() {
			v := 0.0
			if st == cur {
				v = 1
			}
			vec.With(st.String()).Set(v)
		}
		r.Counter("breaker_opens_total").Add(s.breaker.Opens() - r.Counter("breaker_opens_total").Value())
	}
}

// preregister touches every metric family the request path creates lazily,
// so the exposition's `# TYPE` set is complete from the first scrape — a
// scrape target whose family list depends on which failure modes have
// already fired is miserable to alert on, and the e2e golden test relies on
// the stable set.
func (s *Server) preregister() {
	for _, name := range []string{
		"http_requests_total", "http_ratelimited_total", "http_shed_total",
		"http_queue_timeout_total", "http_coalesced_total",
		"breaker_rejected_total", "http_panics_total", "ratelimit_evictions_total",
	} {
		s.reg.Counter(name)
	}
	for _, name := range []string{
		"http_queue_depth", "http_inflight", "ratelimit_tenants", "planner_models",
	} {
		s.reg.Gauge(name)
	}
}

// Handler returns the service mux (for tests and custom listeners).
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the metrics registry the server reports into.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Ready reports whether the server currently passes /readyz.
func (s *Server) Ready() bool { return s.ready.Load() }

// SetReady overrides readiness (Run manages it; tests may force it).
func (s *Server) SetReady(v bool) { s.ready.Store(v) }

// Run serves on ln until ctx is cancelled, then drains gracefully:
//
//	ctx cancelled → /readyz flips to 503
//	             → DrainGrace elapses (load balancers stop routing)
//	             → listener stops accepting; in-flight requests finish
//	             → DrainTimeout at the latest: remaining connections cut
//
// It returns nil after a clean drain; the error otherwise.
func (s *Server) Run(ctx context.Context, ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
		MaxHeaderBytes:    1 << 16,
	}
	s.ready.Store(true)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	s.log.Info("serve: listening", "addr", ln.Addr().String(),
		"max_inflight", s.cfg.MaxInFlight, "max_queue", s.cfg.MaxQueue)
	select {
	case err := <-errCh:
		s.ready.Store(false)
		return fmt.Errorf("server: listener failed: %w", err)
	case <-ctx.Done():
	}
	s.ready.Store(false)
	s.log.Info("serve: drain started", "grace", s.cfg.DrainGrace, "timeout", s.cfg.DrainTimeout)
	if s.cfg.DrainGrace > 0 {
		time.Sleep(s.cfg.DrainGrace)
	}
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		_ = srv.Close()
		return fmt.Errorf("server: drain exceeded %s: %w", s.cfg.DrainTimeout, err)
	}
	<-errCh // http.ErrServerClosed from the Serve goroutine
	s.log.Info("serve: drained cleanly")
	return nil
}
