package server

import (
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Request-path telemetry: the instrument middleware wrapped around every /v1
// route assigns a request ID, captures the response status, and on completion
// feeds four sinks —
//
//   - RED metrics: http_route_requests_total{route,code,tenant_class} and
//     http_route_seconds{route} in the registry (labeled, Prometheus-ready;
//     the unlabeled http_requests_* scalars from the original serve PR stay
//     untouched for existing dashboards);
//   - the SLO tracker behind /slo (availability = no 5xx; latency judged
//     against the configured threshold);
//   - per-stage latency histograms stage_seconds_{limit,admit,coalesce,plan}
//     mirroring the guard chain;
//   - optionally a Recorder (Config.Trace): one burst per request, labeled
//     with the request ID, carrying the guard-stage spans — the same typed
//     stream the simulator emits, so the existing JSONL/Chrome-trace
//     exporters render request traces unchanged;
//
// plus an optional structured access log line carrying the request ID.
//
// The label sets are deliberately tiny: route is one of four fixed names,
// code is an HTTP status, and tenant_class is "anon" or "keyed" — never the
// raw tenant key, which a client mints at will. The vector cardinality cap
// (obs.DefaultMaxSeries) backstops even that.
//
// The middleware rides the advise hot path (~17 µs/request), so it is
// shaped for cost: the 200-status counters and the latency histogram child
// are resolved once per route at wrap time, the span buffer is inline in
// the per-request state (no slice growth for the usual three spans), and
// contiguous guard stages share clock reads.

// requestIDHeader is the canonical request-ID header, echoed on every
// response and accepted (sanitized) from clients so IDs propagate through
// call chains.
const requestIDHeader = "X-Request-ID"

// maxRequestIDLen bounds accepted client-supplied request IDs.
const maxRequestIDLen = 64

// tenantClass collapses the unbounded tenant key space into two label
// values: callers presenting an identity vs. the shared anonymous pool.
func tenantClass(r *http.Request) string {
	if tenantOf(r) == anonymousTenant {
		return "anon"
	}
	return "keyed"
}

// sanitizeRequestID accepts a client-supplied ID only when it is short and
// [0-9A-Za-z._-]: anything else (or empty) returns "", and the server mints
// its own. IDs land in logs and trace labels, so the alphabet is strict.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > maxRequestIDLen {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		ok := c == '.' || c == '_' || c == '-' ||
			(c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !ok {
			return ""
		}
	}
	return id
}

// requestTrace is the per-request telemetry state: a ResponseWriter wrapper
// capturing the status, plus the guard-stage span buffer. One struct, one
// allocation per request. It lives in the request context; a nil
// *requestTrace is a no-op on the span methods, so the handler chain needs
// no telemetry-enabled checks. A request is handled by one goroutine, so
// nothing here is synchronized.
type requestTrace struct {
	http.ResponseWriter
	code int

	id      string
	start   time.Time
	clock   func() time.Time
	spans   []obs.Span
	spanBuf [4]obs.Span // inline storage: limit, admit, plan-or-coalesce + one spare
}

func (rt *requestTrace) WriteHeader(code int) {
	if rt.code == 0 {
		rt.code = code
	}
	rt.ResponseWriter.WriteHeader(code)
}

func (rt *requestTrace) Write(b []byte) (int, error) {
	if rt.code == 0 {
		rt.code = http.StatusOK
	}
	return rt.ResponseWriter.Write(b)
}

// origin returns the request's start time — the first span's natural start —
// without a clock read (zero when tracing is off; spanFrom ignores it).
func (rt *requestTrace) origin() time.Time {
	if rt == nil {
		return time.Time{}
	}
	return rt.start
}

// spanFrom records one completed guard stage, with times relative to the
// request's start (the obs convention: seconds since burst invocation), and
// returns the stage's end time so the next contiguous stage starts without
// another clock read.
func (rt *requestTrace) spanFrom(stage obs.Stage, from time.Time) time.Time {
	if rt == nil {
		return time.Time{}
	}
	now := rt.clock()
	rt.spans = append(rt.spans, obs.Span{
		Stage:    stage,
		StartSec: from.Sub(rt.start).Seconds(),
		EndSec:   now.Sub(rt.start).Seconds(),
	})
	return now
}

// tracePool recycles requestTrace structs (the spans' inline storage makes
// them ~300 B); a request releases its struct at the end of instrument, after
// the flush.
var tracePool = sync.Pool{New: func() any { return new(requestTrace) }}

// traceOf recovers the request's trace from the ResponseWriter the
// instrument middleware handed down (nil when telemetry is off). Riding the
// writer instead of a context value keeps the hot path free of the request
// clone and context allocation WithContext/WithValue would cost; the
// middleware is the innermost wrapper around endpoint, so the assertion is
// exact.
func traceOf(w http.ResponseWriter) *requestTrace {
	rt, _ := w.(*requestTrace)
	return rt
}

// telemetry is the server's request-telemetry state, built once in New.
type telemetry struct {
	reg    *obs.Registry
	red    *obs.CounterVec
	lat    *obs.HistogramVec
	slo    *obs.SLO
	trace  obs.Recorder
	access *slog.Logger
	clock  func() time.Time

	// stageHist pre-resolves the guard stages' histograms so flush does no
	// name concatenation or registry lookup per span.
	stageHist map[obs.Stage]*obs.Histogram

	// traceMu serializes burst flushes into the shared Recorder: a Recorder
	// groups spans by BeginBurst boundaries, so concurrent requests must not
	// interleave.
	traceMu sync.Mutex

	// idBase + idSeq mint request IDs: a per-process random prefix and a
	// counter, e.g. "f3a91c2e-42". Unique across restarts without the cost
	// of a random read per request.
	idBase string
	idSeq  atomic.Uint64
}

func newTelemetry(cfg Config, slo *obs.SLO) *telemetry {
	var buf [4]byte
	_, _ = rand.Read(buf[:])
	return &telemetry{
		reg:    cfg.Reg,
		red:    cfg.Reg.CounterVec("http_route_requests_total", "route", "code", "tenant_class"),
		lat:    cfg.Reg.HistogramVec("http_route_seconds", []string{"route"}, nil),
		slo:    slo,
		trace:  cfg.Trace,
		access: cfg.AccessLog,
		clock:  cfg.Clock,
		idBase: hex.EncodeToString(buf[:]),
		stageHist: map[obs.Stage]*obs.Histogram{
			obs.StageLimit:    cfg.Reg.Histogram("stage_seconds_"+obs.StageLimit.String(), nil),
			obs.StageAdmit:    cfg.Reg.Histogram("stage_seconds_"+obs.StageAdmit.String(), nil),
			obs.StageCoalesce: cfg.Reg.Histogram("stage_seconds_"+obs.StageCoalesce.String(), nil),
			obs.StagePlan:     cfg.Reg.Histogram("stage_seconds_"+obs.StagePlan.String(), nil),
		},
	}
}

// nextID mints a server-side request ID.
func (t *telemetry) nextID() string {
	buf := make([]byte, 0, 24)
	buf = append(buf, t.idBase...)
	buf = append(buf, '-')
	buf = strconv.AppendUint(buf, t.idSeq.Add(1), 10)
	return string(buf)
}

// instrument wraps a /v1 handler with request-ID assignment, status capture,
// and completion-time telemetry fan-out.
func (t *telemetry) instrument(route string, next http.Handler) http.Handler {
	// The overwhelmingly common RED outcomes, resolved once per route.
	okAnon := t.red.With(route, "200", "anon")
	okKeyed := t.red.With(route, "200", "keyed")
	latH := t.lat.With(route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := t.clock()
		id := sanitizeRequestID(r.Header.Get(requestIDHeader))
		if id == "" {
			id = t.nextID()
		}
		w.Header().Set(requestIDHeader, id)

		rt := tracePool.Get().(*requestTrace)
		*rt = requestTrace{ResponseWriter: w, id: id, start: start, clock: t.clock}
		rt.spans = rt.spanBuf[:0]
		next.ServeHTTP(rt, r)

		code := rt.code
		if code == 0 {
			code = http.StatusOK
		}
		end := t.clock()
		durSec := end.Sub(start).Seconds()
		class := tenantClass(r)
		switch {
		case code == http.StatusOK && class == "anon":
			okAnon.Inc()
		case code == http.StatusOK:
			okKeyed.Inc()
		default:
			t.red.With(route, strconv.Itoa(code), class).Inc()
		}
		latH.Observe(durSec)
		t.slo.RecordAt(end, code < 500, durSec)
		t.flush(rt)
		rt.ResponseWriter = nil // don't pin the response across pool reuse
		tracePool.Put(rt)
		if t.access != nil {
			t.access.LogAttrs(r.Context(), slog.LevelInfo, "access",
				slog.String("request_id", id),
				slog.String("route", route),
				slog.Int("code", code),
				slog.String("tenant_class", class),
				slog.Float64("dur_sec", durSec),
			)
		}
	})
}

// flush feeds the request's guard-stage spans into the per-stage latency
// histograms and, when a trace Recorder is configured, emits them as one
// contiguous burst labeled with the request ID.
func (t *telemetry) flush(rt *requestTrace) {
	for _, sp := range rt.spans {
		if h := t.stageHist[sp.Stage]; h != nil {
			h.Observe(sp.DurSec())
		}
	}
	if t.trace == nil {
		return
	}
	t.traceMu.Lock()
	defer t.traceMu.Unlock()
	t.trace.BeginBurst(obs.BurstInfo{
		Platform: "serve", Label: rt.id, Functions: 1, Degree: 1, Instances: 1,
	})
	for _, sp := range rt.spans {
		t.trace.Span(sp)
	}
}
