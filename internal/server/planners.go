package server

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/funcx"
	"repro/internal/platform"
	"repro/internal/workload"
)

// plannerPool owns one fitted model stack + cached core.Planner per
// (platform, application) pair. Model building runs the full probing
// pipeline (tens of milliseconds of simulation), so concurrent first
// requests for the same pair coalesce on the pool's singleflight; planning
// against a built entry is the lock-free TableCache hot path from PR 4–5.
type plannerPool struct {
	seed    int64
	flights flightGroup
	mu      sync.Mutex
	entries map[string]*plannerEntry
	joints  map[string]*jointEntry
	builds  atomic.Int64
}

// plannerEntry is one profiled (platform, app) pair.
type plannerEntry struct {
	planner      *core.Planner
	models       core.Models
	overhead     core.Overhead
	platformName string // the config's display name, echoed in responses
}

// jointEntry is one profiled (platform, app, memory-size grid) triple: the
// per-size model stacks plus a cached joint planner over them. Building one
// costs a modeling pipeline per size, so the pool's singleflight matters
// even more than for 1-D entries.
type jointEntry struct {
	planner      *core.Planner
	grid         core.GridModels
	overhead     core.Overhead
	platformName string
	sizesMB      []float64
}

func newPlannerPool(seed int64) *plannerPool {
	return &plannerPool{
		seed:    seed,
		entries: make(map[string]*plannerEntry),
		joints:  make(map[string]*jointEntry),
	}
}

// platformByName maps the API's platform parameter to a config, mirroring
// the CLI's accepted spellings.
func platformByName(name string) (platform.Config, error) {
	switch strings.ToLower(name) {
	case "aws", "lambda", "aws-lambda":
		return platform.AWSLambda(), nil
	case "google", "gcf":
		return platform.GoogleCloudFunctions(), nil
	case "azure":
		return platform.AzureFunctions(), nil
	case "funcx":
		return funcx.Config(), nil
	default:
		return platform.Config{}, fmt.Errorf("unknown platform %q (aws, google, azure, funcx)", name)
	}
}

// get returns the entry for (platformName, appName), building and caching
// it on first use. Unknown names are apiErrors (400s) so they never count
// against the circuit breaker.
func (p *plannerPool) get(ctx context.Context, platformName, appName string) (*plannerEntry, error) {
	key := platformName + "|" + appName
	p.mu.Lock()
	e := p.entries[key]
	p.mu.Unlock()
	if e != nil {
		return e, nil
	}
	v, err, _ := p.flights.Do(ctx, key, func() (any, error) {
		// Double-check under the flight: a previous leader may have
		// finished between our map read and the flight acquisition.
		p.mu.Lock()
		if e := p.entries[key]; e != nil {
			p.mu.Unlock()
			return e, nil
		}
		p.mu.Unlock()
		w, err := workload.ByName(appName)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		cfg, err := platformByName(platformName)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		meas := &core.SimMeasurer{Config: cfg, Demand: w.Demand(), Seed: p.seed}
		models, _, _, overhead, err := core.BuildModels(meas, core.ProfileOptionsFor(cfg, w.Demand()))
		if err != nil {
			return nil, fmt.Errorf("model build for %s on %s: %w", appName, platformName, err)
		}
		e := &plannerEntry{
			planner: core.NewPlanner(models), models: models,
			overhead: overhead, platformName: cfg.Name,
		}
		p.mu.Lock()
		p.entries[key] = e
		p.mu.Unlock()
		p.builds.Add(1)
		return e, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*plannerEntry), nil
}

// defaultGridSizes is the memory grid used when the caller does not pass
// sizes: quarter steps up to the platform's instance memory. Deterministic,
// so identical requests share one pool entry and the e2e goldens are
// stable.
func defaultGridSizes(instanceMemMB float64) []float64 {
	return []float64{instanceMemMB / 4, instanceMemMB / 2, 3 * instanceMemMB / 4, instanceMemMB}
}

// getJoint returns the joint entry for (platform, app, sizes), building and
// caching it on first use. A nil or empty sizesMB takes the platform's
// default grid. Size-grid validation failures are 400s; only the modeling
// pipeline itself can produce a 500.
func (p *plannerPool) getJoint(ctx context.Context, platformName, appName string, sizesMB []float64) (*jointEntry, error) {
	cfg, err := platformByName(platformName)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	if len(sizesMB) == 0 {
		sizesMB = defaultGridSizes(cfg.Shape.MemoryMB)
	}
	key := fmt.Sprintf("joint|%s|%s|%v", platformName, appName, sizesMB)
	p.mu.Lock()
	e := p.joints[key]
	p.mu.Unlock()
	if e != nil {
		return e, nil
	}
	v, err, _ := p.flights.Do(ctx, key, func() (any, error) {
		p.mu.Lock()
		if e := p.joints[key]; e != nil {
			p.mu.Unlock()
			return e, nil
		}
		p.mu.Unlock()
		w, err := workload.ByName(appName)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		probes, err := core.GridProbesFor(cfg, w.Demand(), sizesMB, p.seed)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		grid, overhead, err := core.BuildGridModels(probes)
		if err != nil {
			return nil, fmt.Errorf("grid model build for %s on %s: %w", appName, platformName, err)
		}
		pl, err := core.NewJointPlanner(grid)
		if err != nil {
			return nil, fmt.Errorf("grid model build for %s on %s: %w", appName, platformName, err)
		}
		e := &jointEntry{
			planner: pl, grid: grid, overhead: overhead,
			platformName: cfg.Name, sizesMB: sizesMB,
		}
		p.mu.Lock()
		p.joints[key] = e
		p.mu.Unlock()
		p.builds.Add(1)
		return e, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*jointEntry), nil
}

// size reports the number of profiled pairs (1-D and joint), for the
// models gauge.
func (p *plannerPool) size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries) + len(p.joints)
}
