package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/orchestrator"
	"repro/internal/workload"
)

// apiError is an error with an HTTP status; anything else surfacing from a
// compute function is a 500. Only 5xx outcomes feed the circuit breaker —
// a client's typo must never open the circuit for everyone.
type apiError struct {
	status     int
	msg        string
	retryAfter time.Duration
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// toAPIError normalizes any compute error for the response writer.
func toAPIError(err error) *apiError {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return &apiError{status: http.StatusGatewayTimeout, msg: "request deadline exceeded"}
	}
	if errors.Is(err, context.Canceled) {
		return &apiError{status: 499, msg: "client cancelled"} // nginx convention
	}
	return &apiError{status: http.StatusInternalServerError, msg: err.Error()}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	w.Write(append(buf, '\n'))
}

func writeAPIError(w http.ResponseWriter, e *apiError) {
	if e.retryAfter > 0 {
		secs := int64(math.Ceil(e.retryAfter.Seconds()))
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, e.status, map[string]string{"error": e.msg})
}

// computeFn produces an endpoint's response value. It runs under the
// request deadline, behind admission control and the breaker, possibly
// coalesced with identical concurrent requests.
type computeFn func(ctx context.Context, q url.Values) (any, error)

// endpoint wraps a compute function in the full robustness chain:
// panic recovery → rate limit → admission → deadline → breaker →
// coalescing → compute, with every decision surfaced in the registry.
// When the telemetry middleware is active, each guard stage also emits a
// span into the request's trace (limit → admit → plan-or-coalesce).
func (s *Server) endpoint(name string, compute computeFn) http.Handler {
	reqs := s.reg.Counter("http_requests_" + name)
	lat := s.reg.Histogram("http_seconds_"+name, nil)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				// The localfaas pattern: a panic fails only this request,
				// never the daemon.
				s.reg.Counter("http_panics_total").Inc()
				s.log.Error("handler panic", "endpoint", name, "panic", fmt.Sprint(p))
				writeAPIError(w, &apiError{status: http.StatusInternalServerError, msg: "internal error"})
			}
		}()
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			writeAPIError(w, &apiError{status: http.StatusMethodNotAllowed, msg: "use GET"})
			return
		}
		reqs.Inc()
		s.reg.Counter("http_requests_total").Inc()
		rt := traceOf(w)

		// Per-tenant token bucket.
		tenant := tenantOf(r)
		mark := rt.origin()
		ok, retryAfter := s.tenants.allow(tenant, s.cfg.Clock())
		mark = rt.spanFrom(obs.StageLimit, mark)
		if !ok {
			s.reg.Counter("http_ratelimited_total").Inc()
			s.log.Debug("rate limited", "tenant", tenant, "endpoint", name)
			writeAPIError(w, &apiError{
				status: http.StatusTooManyRequests, retryAfter: retryAfter,
				msg: "tenant rate limit exceeded",
			})
			return
		}
		s.reg.Gauge("ratelimit_tenants").Set(float64(s.tenants.size()))
		s.reg.Counter("ratelimit_evictions_total").Add(s.tenants.evicted() - s.reg.Counter("ratelimit_evictions_total").Value())

		// Admission: bounded in-flight work, bounded queue, honest shedding.
		release, st := s.adm.acquire(r.Context())
		mark = rt.spanFrom(obs.StageAdmit, mark)
		s.reg.Gauge("http_queue_depth").Set(float64(s.adm.queued()))
		switch st {
		case admitShed:
			s.reg.Counter("http_shed_total").Inc()
			writeAPIError(w, &apiError{
				status: http.StatusTooManyRequests, retryAfter: s.cfg.ShedRetryAfter,
				msg: "server overloaded, request shed",
			})
			return
		case admitTimeout:
			s.reg.Counter("http_queue_timeout_total").Inc()
			writeAPIError(w, &apiError{status: http.StatusServiceUnavailable, msg: "queued past deadline"})
			return
		}
		defer func() {
			release()
			s.reg.Gauge("http_inflight").Set(float64(s.adm.inFlight()))
		}()
		s.reg.Gauge("http_inflight").Set(float64(s.adm.inFlight()))

		// Per-request deadline, propagated through the compute path.
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()

		// Circuit breaker on the planner path.
		now := s.cfg.Clock()
		if !s.breaker.Allow(now) {
			s.reg.Counter("breaker_rejected_total").Inc()
			writeAPIError(w, &apiError{
				status: http.StatusServiceUnavailable, retryAfter: s.breaker.RetryAfter(now),
				msg: "planner circuit open",
			})
			return
		}

		q := r.URL.Query()
		start := time.Now()
		val, err, shared := s.flights.Do(ctx, name+"?"+q.Encode(), func() (any, error) {
			if s.cfg.TestHooks {
				if err := s.testHooks(ctx, q); err != nil {
					return nil, err
				}
			}
			return compute(ctx, q)
		})
		dur := time.Since(start).Seconds()
		lat.Observe(dur)
		if shared {
			// A follower spent the interval waiting on the leader's
			// computation, not computing.
			rt.spanFrom(obs.StageCoalesce, mark)
		} else {
			rt.spanFrom(obs.StagePlan, mark)
		}
		var ae *apiError
		if err != nil {
			ae = toAPIError(err)
		}
		s.breaker.Record(s.cfg.Clock(), dur, ae != nil && ae.status >= 500)
		s.reg.Gauge("breaker_state").Set(float64(s.breaker.State()))
		if shared {
			s.reg.Counter("http_coalesced_total").Inc()
		}
		s.reg.Gauge("planner_models").Set(float64(s.pool.size()))
		if ae != nil {
			writeAPIError(w, ae)
			return
		}
		writeJSON(w, http.StatusOK, val)
	})
}

// testHooks honors the e2e/load-test query parameters when Config.TestHooks
// is set: delayms holds the request in flight, panic=1 crashes the handler.
func (s *Server) testHooks(ctx context.Context, q url.Values) error {
	if q.Get("panic") == "1" {
		panic("test hook panic")
	}
	if d := q.Get("delayms"); d != "" {
		ms, err := strconv.Atoi(d)
		if err != nil || ms < 0 {
			return badRequest("bad delayms %q", d)
		}
		select {
		case <-time.After(time.Duration(ms) * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// --- Parameter parsing -------------------------------------------------------

func intParam(q url.Values, name string, def int) (int, error) {
	v := q.Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, badRequest("bad %s %q", name, v)
	}
	return n, nil
}

func floatParam(q url.Values, name string, def float64) (float64, error) {
	v := q.Get(name)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, badRequest("bad %s %q", name, v)
	}
	return f, nil
}

// sizesParam reads sizes, a comma-separated memory grid in MB (e.g.
// sizes=2048,4096,10240). Empty means the platform default grid; order and
// positivity are validated downstream by the grid builder with typed
// errors.
func sizesParam(q url.Values) ([]float64, error) {
	v := q.Get("sizes")
	if v == "" {
		return nil, nil
	}
	parts := strings.Split(v, ",")
	sizes := make([]float64, 0, len(parts))
	for _, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, badRequest("bad sizes entry %q", p)
		}
		sizes = append(sizes, f)
	}
	return sizes, nil
}

// weightsParam reads ws (service weight; expense is 1−ws).
func weightsParam(q url.Values) (core.Weights, error) {
	ws, err := floatParam(q, "ws", 0.5)
	if err != nil {
		return core.Weights{}, err
	}
	if ws < 0 || ws > 1 {
		return core.Weights{}, badRequest("ws %g outside [0,1]", ws)
	}
	return core.Weights{Service: ws, Expense: 1 - ws}, nil
}

// ceilDiv is the instance count at a packing degree.
func ceilDiv(c, degree int) int { return (c + degree - 1) / degree }

// --- Response shapes ---------------------------------------------------------

type planJSON struct {
	Degree              int     `json:"degree"`
	Instances           int     `json:"instances"`
	PredictedServiceSec float64 `json:"predicted_service_sec"`
	PredictedExpenseUSD float64 `json:"predicted_expense_usd"`
	BaselineServiceSec  float64 `json:"baseline_service_sec"`
	BaselineExpenseUSD  float64 `json:"baseline_expense_usd"`
}

func planToJSON(p core.Plan) planJSON {
	return planJSON{
		Degree:              p.Degree,
		Instances:           ceilDiv(p.Concurrency, p.Degree),
		PredictedServiceSec: p.PredictedServiceSec,
		PredictedExpenseUSD: p.PredictedExpenseUSD,
		BaselineServiceSec:  p.BaselineServiceSec,
		BaselineExpenseUSD:  p.BaselineExpenseUSD,
	}
}

type adviseResponse struct {
	App              string   `json:"app"`
	Platform         string   `json:"platform"`
	C                int      `json:"c"`
	WService         float64  `json:"w_service"`
	WExpense         float64  `json:"w_expense"`
	MaxDegree        int      `json:"max_degree"`
	Plan             planJSON `json:"plan"`
	DegreeLo         int      `json:"degree_lo"`
	DegreeHi         int      `json:"degree_hi"`
	ModelOverheadUSD float64  `json:"model_overhead_usd"`
}

type qosResponse struct {
	App          string   `json:"app"`
	Platform     string   `json:"platform"`
	C            int      `json:"c"`
	QoSSec       float64  `json:"qos_sec"`
	TailQuantile float64  `json:"tail_quantile"`
	WService     float64  `json:"w_service"`
	WExpense     float64  `json:"w_expense"`
	Plan         planJSON `json:"plan"`
}

type jointResponse struct {
	App              string    `json:"app"`
	Platform         string    `json:"platform"`
	C                int       `json:"c"`
	WService         float64   `json:"w_service"`
	WExpense         float64   `json:"w_expense"`
	QoSSec           float64   `json:"qos_sec,omitempty"`
	TailQuantile     float64   `json:"tail_quantile,omitempty"`
	SizesMB          []float64 `json:"sizes_mb"`
	MemMB            float64   `json:"mem_mb"`
	MaxDegree        int       `json:"max_degree"`
	Plan             planJSON  `json:"plan"`
	ModelOverheadUSD float64   `json:"model_overhead_usd"`
}

type planAtResponse struct {
	App           string  `json:"app"`
	Platform      string  `json:"platform"`
	C             int     `json:"c"`
	Degree        int     `json:"degree"`
	MaxDegree     int     `json:"max_degree"`
	Instances     int     `json:"instances"`
	ETSec         float64 `json:"et_sec"`
	ServiceSec    float64 `json:"service_sec"`
	P95ServiceSec float64 `json:"p95_service_sec"`
	ExpenseUSD    float64 `json:"expense_usd"`
}

type mixedAppJSON struct {
	App   string `json:"app"`
	Count int    `json:"count"`
}

type mixedBinJSON struct {
	Counts []int `json:"counts"`
	N      int   `json:"n"`
}

type mixedResponse struct {
	Platform            string         `json:"platform"`
	Apps                []mixedAppJSON `json:"apps"`
	WService            float64        `json:"w_service"`
	WExpense            float64        `json:"w_expense"`
	Strategy            string         `json:"strategy"`
	Instances           int            `json:"instances"`
	PredictedServiceSec float64        `json:"predicted_service_sec"`
	PredictedExpenseUSD float64        `json:"predicted_expense_usd"`
	Bins                []mixedBinJSON `json:"bins"`
	ModelOverheadUSD    float64        `json:"model_overhead_usd"`
}

// --- Compute functions -------------------------------------------------------

// computeAdvise is GET /v1/advise?app=&platform=&c=&ws= — the cached
// equivalent of `propack advise`.
func (s *Server) computeAdvise(ctx context.Context, q url.Values) (any, error) {
	app, plat := q.Get("app"), q.Get("platform")
	c, err := intParam(q, "c", 5000)
	if err != nil {
		return nil, err
	}
	if c < 1 {
		return nil, badRequest("c %d < 1", c)
	}
	w, err := weightsParam(q)
	if err != nil {
		return nil, err
	}
	e, err := s.pool.get(ctx, plat, app)
	if err != nil {
		return nil, err
	}
	plan, err := e.planner.PlanFor(c, w)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	lo, hi, err := e.models.DegreeRange(c, w, 0.02)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	return &adviseResponse{
		App: app, Platform: e.platformName, C: c,
		WService: w.Service, WExpense: w.Expense,
		MaxDegree: e.models.MaxDegree,
		Plan:      planToJSON(plan), DegreeLo: lo, DegreeHi: hi,
		ModelOverheadUSD: e.overhead.TotalUSD(),
	}, nil
}

// computeQoS is GET /v1/qos?app=&platform=&c=&qos= — tail-latency-bounded
// planning (Sec. 2.6).
func (s *Server) computeQoS(ctx context.Context, q url.Values) (any, error) {
	app, plat := q.Get("app"), q.Get("platform")
	c, err := intParam(q, "c", 5000)
	if err != nil {
		return nil, err
	}
	qos, err := floatParam(q, "qos", 0)
	if err != nil {
		return nil, err
	}
	if qos <= 0 {
		return nil, badRequest("qos must be a positive p95 bound in seconds")
	}
	e, err := s.pool.get(ctx, plat, app)
	if err != nil {
		return nil, err
	}
	plan, w, err := e.planner.QoSPlan(c, qos, core.QoSOptions{})
	if err != nil {
		return nil, badRequest("%v", err)
	}
	return &qosResponse{
		App: app, Platform: e.platformName, C: c,
		QoSSec: qos, TailQuantile: 95,
		WService: w.Service, WExpense: w.Expense,
		Plan: planToJSON(plan),
	}, nil
}

// computeJoint is GET /v1/joint?app=&platform=&c=&ws=&sizes=&qos= — joint
// degree × memory planning over a memory-size grid. With qos set, the
// objective weights come from the Sec. 2.6 search over the whole grid;
// otherwise ws applies directly. sizes defaults to quarter steps of the
// platform's instance memory.
func (s *Server) computeJoint(ctx context.Context, q url.Values) (any, error) {
	app, plat := q.Get("app"), q.Get("platform")
	c, err := intParam(q, "c", 5000)
	if err != nil {
		return nil, err
	}
	if c < 1 {
		return nil, badRequest("c %d < 1", c)
	}
	w, err := weightsParam(q)
	if err != nil {
		return nil, err
	}
	qos, err := floatParam(q, "qos", 0)
	if err != nil {
		return nil, err
	}
	if qos < 0 {
		return nil, badRequest("qos must be a positive p95 bound in seconds")
	}
	sizes, err := sizesParam(q)
	if err != nil {
		return nil, err
	}
	e, err := s.pool.getJoint(ctx, plat, app, sizes)
	if err != nil {
		return nil, err
	}
	resp := &jointResponse{
		App: app, Platform: e.platformName, C: c,
		SizesMB:          e.sizesMB,
		ModelOverheadUSD: e.overhead.TotalUSD(),
	}
	var plan core.JointPlan
	if qos > 0 {
		plan, w, err = e.planner.QoSPlanJoint(c, qos, core.QoSOptions{})
		if err != nil {
			return nil, badRequest("%v", err)
		}
		resp.QoSSec, resp.TailQuantile = qos, 95
	} else {
		plan, err = e.planner.PlanJointFor(c, w)
		if err != nil {
			return nil, badRequest("%v", err)
		}
	}
	resp.WService, resp.WExpense = w.Service, w.Expense
	resp.MemMB = plan.MemMB
	resp.Plan = planToJSON(plan.Plan)
	for _, sm := range e.grid.Sizes {
		if sm.MemMB == plan.MemMB {
			resp.MaxDegree = sm.Models.MaxDegree
		}
	}
	return resp, nil
}

// computePlan is GET /v1/plan?app=&platform=&c=&degree= — model predictions
// at a caller-fixed packing degree, straight off the cached DegreeTable.
func (s *Server) computePlan(ctx context.Context, q url.Values) (any, error) {
	app, plat := q.Get("app"), q.Get("platform")
	c, err := intParam(q, "c", 5000)
	if err != nil {
		return nil, err
	}
	degree, err := intParam(q, "degree", 1)
	if err != nil {
		return nil, err
	}
	e, err := s.pool.get(ctx, plat, app)
	if err != nil {
		return nil, err
	}
	if degree < 1 || degree > e.models.MaxDegree {
		return nil, badRequest("degree %d outside [1,%d]", degree, e.models.MaxDegree)
	}
	t, err := e.planner.Table(c)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	return &planAtResponse{
		App: app, Platform: e.platformName, C: c,
		Degree: degree, MaxDegree: e.models.MaxDegree,
		Instances:     ceilDiv(c, degree),
		ETSec:         e.models.ET.At(degree),
		ServiceSec:    t.ServiceTime(degree),
		P95ServiceSec: t.ServiceTimeQuantile(degree, 95),
		ExpenseUSD:    t.Expense(degree),
	}, nil
}

// computeMixed is GET /v1/mixed?app=Name:count&app=Name:count&platform=&ws=
// — plan-only heterogeneous packing (the Sec. 5 extension).
func (s *Server) computeMixed(ctx context.Context, q url.Values) (any, error) {
	plat := q.Get("platform")
	w, err := weightsParam(q)
	if err != nil {
		return nil, err
	}
	specs := q["app"]
	if len(specs) < 2 {
		return nil, badRequest("need at least two app=Name:count parameters")
	}
	cfg, err := platformByName(plat)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	apps := make([]orchestrator.MixedApp, len(specs))
	jsonApps := make([]mixedAppJSON, len(specs))
	for i, spec := range specs {
		name, countStr, ok := strings.Cut(spec, ":")
		if !ok {
			return nil, badRequest("bad app spec %q (want Name:count)", spec)
		}
		count, err := strconv.Atoi(countStr)
		if err != nil || count < 1 {
			return nil, badRequest("bad app count in %q", spec)
		}
		wl, err := workload.ByName(name)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		apps[i] = orchestrator.MixedApp{Workload: wl, Count: count}
		jsonApps[i] = mixedAppJSON{App: wl.Name(), Count: count}
	}
	plan, overhead, err := orchestrator.PlanMixedJob(cfg, apps, w, s.cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("mixed planning: %w", err)
	}
	return &mixedResponse{
		Platform: cfg.Name, Apps: jsonApps,
		WService: w.Service, WExpense: w.Expense,
		Strategy:            plan.Strategy,
		Instances:           plan.Instances(),
		PredictedServiceSec: plan.PredictedServiceSec,
		PredictedExpenseUSD: plan.PredictedExpenseUSD,
		Bins:                compressBins(plan.BinCounts),
		ModelOverheadUSD:    overhead.TotalUSD(),
	}, nil
}

// compressBins run-length-encodes identical consecutive bin compositions —
// a 500-instance plan is usually two or three distinct compositions, and
// the response stays bounded no matter the concurrency.
func compressBins(bins [][]int) []mixedBinJSON {
	out := []mixedBinJSON{}
	for _, b := range bins {
		if n := len(out); n > 0 && equalInts(out[n-1].Counts, b) {
			out[n-1].N++
			continue
		}
		out = append(out, mixedBinJSON{Counts: append([]int(nil), b...), N: 1})
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
