package server

import (
	"net/http"
	"strings"
	"sync"
	"time"
)

// Per-tenant token-bucket rate limiting. The tenant is whatever identity
// the request presents (X-API-Key, or a bearer token); anonymous callers
// share one default bucket, so an unauthenticated stampede cannot starve
// identified tenants. The table is bounded: beyond maxTenants the
// least-recently-seen bucket is evicted, which at worst briefly refreshes
// a dormant tenant's burst — a deliberate trade against unbounded memory.

// anonymousTenant keys the shared bucket for unidentified callers.
const anonymousTenant = "anonymous"

// tenantOf extracts the caller identity from request headers.
func tenantOf(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	if auth := r.Header.Get("Authorization"); auth != "" {
		if t, ok := strings.CutPrefix(auth, "Bearer "); ok && t != "" {
			return t
		}
	}
	return anonymousTenant
}

type tenantBucket struct {
	tokens   float64
	last     time.Time // last refill
	lastSeen time.Time // eviction recency
}

type tenantLimiter struct {
	mu         sync.Mutex
	rps, burst float64
	maxTenants int
	buckets    map[string]*tenantBucket
	evictions  int64
}

func newTenantLimiter(rps, burst float64, maxTenants int) *tenantLimiter {
	return &tenantLimiter{
		rps: rps, burst: burst, maxTenants: maxTenants,
		buckets: make(map[string]*tenantBucket),
	}
}

// allow consumes one token from the tenant's bucket, reporting the wait
// until a token exists when it cannot. A non-positive rps disables
// limiting.
func (l *tenantLimiter) allow(tenant string, now time.Time) (ok bool, retryAfter time.Duration) {
	if l.rps <= 0 {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[tenant]
	if b == nil {
		if len(l.buckets) >= l.maxTenants {
			l.evictOldest()
		}
		b = &tenantBucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * l.rps
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	b.lastSeen = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rps * float64(time.Second))
	if wait < time.Second {
		wait = time.Second // Retry-After is whole seconds; never hint 0
	}
	return false, wait
}

// evictOldest drops the least-recently-seen bucket (callers hold l.mu).
func (l *tenantLimiter) evictOldest() {
	var victim string
	var oldest time.Time
	first := true
	for k, b := range l.buckets {
		if first || b.lastSeen.Before(oldest) {
			victim, oldest, first = k, b.lastSeen, false
		}
	}
	if victim != "" {
		delete(l.buckets, victim)
		l.evictions++
	}
}

// size reports the live bucket count, for the tenants gauge.
func (l *tenantLimiter) size() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}

// evicted reports cumulative evictions, for metrics.
func (l *tenantLimiter) evicted() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.evictions
}
