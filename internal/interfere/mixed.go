package interfere

import (
	"fmt"
	"math"
)

// Mixed-demand packing: the paper's Sec. 5 notes that "packing functions of
// different characteristics presents new modeling challenges — ProPack can
// be extended to account for those". This file is that extension's ground
// truth: an instance running functions with *different* demands.
//
// The homogeneous model ET(d) = solo·exp(κ·(d−1)) reads as "each co-resident
// contributes a constant log-slowdown proportional to its resource
// pressure". The mixed generalization keeps exactly that structure: function
// i finishes after
//
//	ET_i = solo_i · exp( rate/Cores · Σ_{j≠i} pressure_j )
//
// where pressure_j = u_j + BWWeight·bwPressure_j, and the instance's wall
// time is the slowest function, floored by work conservation. With all
// demands equal this reduces term-for-term to ExecSeconds.

// pressure is a demand's contention contribution on this shape.
func (s Shape) pressure(d Demand) float64 {
	bwPressure := 0.0
	if s.MemBWMBps > 0 {
		bwPressure = math.Min(1, float64(s.Cores)*d.MemBWMBps/s.MemBWMBps)
	}
	return d.Utilization() + s.BWWeight*bwPressure
}

// FitsMemory reports whether the demands' combined footprint fits in the
// instance.
func (s Shape) FitsMemory(demands []Demand) bool {
	var mem float64
	for _, d := range demands {
		mem += d.MemoryMB
	}
	return mem <= s.MemoryMB
}

// ExecSecondsMixed returns the wall-clock execution time of one instance
// running the given (possibly heterogeneous) set of functions concurrently
// as threads. It panics on an empty set; callers enforce the memory bound
// via FitsMemory (the platform's MixedBurst validation does).
func ExecSecondsMixed(demands []Demand, s Shape) float64 {
	if len(demands) == 0 {
		panic("interfere: empty packed set")
	}
	var totalCPU float64
	for _, d := range demands {
		totalCPU += d.CPUSeconds
	}
	var et float64
	for _, d := range demands {
		// Same-demand co-residents contribute full pressure; different
		// demands are discounted (diverse threads interleave better).
		var others float64
		for _, o := range demands {
			p := s.pressure(o)
			if o != d {
				p *= 1 - s.CrossDiscount
			}
			others += p
		}
		others -= s.pressure(d) // exclude the member itself (undiscounted)
		fi := d.SoloSeconds() * math.Exp(s.ContentionRate/float64(s.Cores)*others)
		if fi > et {
			et = fi
		}
	}
	// Work conservation: the combined compute cannot beat the core count.
	var maxIO float64
	for _, d := range demands {
		if d.IOSeconds > maxIO {
			maxIO = d.IOSeconds
		}
	}
	if floor := totalCPU/float64(s.Cores) + maxIO; floor > et {
		et = floor
	}
	return et * s.IsolationFactor
}

// ValidateMixed checks every demand of a packed set and the memory bound.
func (s Shape) ValidateMixed(demands []Demand) error {
	if len(demands) == 0 {
		return fmt.Errorf("interfere: empty packed set")
	}
	for i, d := range demands {
		if err := d.Validate(); err != nil {
			return fmt.Errorf("interfere: member %d: %w", i, err)
		}
	}
	if !s.FitsMemory(demands) {
		var mem float64
		for _, d := range demands {
			mem += d.MemoryMB
		}
		return fmt.Errorf("interfere: packed set needs %.0f MB > instance %.0f MB", mem, s.MemoryMB)
	}
	return nil
}
