// Package interfere models the performance interference among functions
// packed together inside one serverless function instance.
//
// This is the *ground truth* the simulator executes: packed functions run as
// threads sharing the instance's CPU cores and memory bandwidth (the paper
// packs them as no-GIL CPython threads on a 6-core / 10 GB Lambda). ProPack
// never sees this model — it samples execution times and fits its own
// exponential model (Eq. 1) to them, exactly as it must against a real
// cloud.
//
// Shape of the ground truth. The paper's measurements (Fig. 4) found the
// degree→execution-time relationship on real platforms to be monotone and
// well described by an exponential; we therefore model contention as a
// compound per-thread friction — each added thread costs a roughly constant
// *fraction* of throughput (cache lines evicted, runtime locks, bandwidth
// stalls), which composes multiplicatively:
//
//	ET(d) = solo · exp(κ·(d−1)) , κ = ContentionRate·(u + BWWeight·bwPressure)/Cores
//
// where u is the function's CPU utilization (CPU/(CPU+IO)) and bwPressure
// the fraction of the instance's memory bandwidth the application would pull
// with all cores busy. Compute-bound, bandwidth-hungry functions (Smith-
// Waterman) thus degrade much faster than I/O-heavy ones (Stateless Cost),
// matching the paper's observation that packing degrees are application-
// specific. A work-conservation floor keeps the model physical: d functions
// needing CPUSeconds each can never finish faster than the cores allow.
package interfere

import (
	"fmt"
	"math"
)

// Demand describes the resource appetite of one logical function.
type Demand struct {
	// CPUSeconds is the pure compute time of one function on a dedicated
	// core with uncontended memory bandwidth.
	CPUSeconds float64
	// IOSeconds is time blocked on network/storage in a solo run. I/O waits
	// from different packed functions overlap with each other's compute, so
	// they contend far less than CPU.
	IOSeconds float64
	// MemoryMB is the peak resident footprint of one function. It bounds the
	// maximum packing degree: floor(instance memory / MemoryMB).
	MemoryMB float64
	// MemBWMBps is the sustained memory-bandwidth demand of one function
	// during its compute phase.
	MemBWMBps float64
	// InputMB and OutputMB are bytes moved to/from remote storage per
	// function. They drive storage latency and network-fee accounting.
	InputMB  float64
	OutputMB float64
	// ShuffleFraction is the fraction of OutputMB destined to sibling
	// functions of the same application (e.g. a map-reduce shuffle). When
	// siblings are packed into the same instance that traffic becomes local,
	// which is why packing shrinks network fees on platforms that charge
	// them (paper Fig. 21).
	ShuffleFraction float64
	// SharedInput marks applications whose functions all read the same
	// input object (e.g. the Video benchmark's 5.2 MB clip); a packed
	// instance fetches it once.
	SharedInput bool
}

// Validate reports an error for demands the model cannot execute.
func (d Demand) Validate() error {
	switch {
	case d.CPUSeconds < 0 || d.IOSeconds < 0:
		return fmt.Errorf("interfere: negative time demand %+v", d)
	case d.CPUSeconds == 0 && d.IOSeconds == 0:
		return fmt.Errorf("interfere: demand with zero work")
	case d.MemoryMB <= 0:
		return fmt.Errorf("interfere: non-positive memory %g MB", d.MemoryMB)
	case d.MemBWMBps < 0:
		return fmt.Errorf("interfere: negative memory bandwidth")
	case d.ShuffleFraction < 0 || d.ShuffleFraction > 1:
		return fmt.Errorf("interfere: shuffle fraction %g outside [0,1]", d.ShuffleFraction)
	default:
		return nil
	}
}

// SoloSeconds is the execution time of one function running alone in an
// instance with uncontended resources.
func (d Demand) SoloSeconds() float64 { return d.CPUSeconds + d.IOSeconds }

// Utilization is the fraction of a solo run spent on a core.
func (d Demand) Utilization() float64 {
	solo := d.SoloSeconds()
	if solo == 0 {
		return 0
	}
	return d.CPUSeconds / solo
}

// Shape describes the execution resources of one function instance.
type Shape struct {
	Cores     int     // vCPUs available to packed threads (6 on 10 GB Lambda)
	MemoryMB  float64 // instance memory (10240 on Lambda's largest size)
	MemBWMBps float64 // aggregate memory bandwidth of the instance

	// ContentionRate is κ0: the per-unit-pressure exponential contention
	// rate of co-scheduled threads. Higher means packing hurts more.
	ContentionRate float64
	// BWWeight scales how much memory-bandwidth pressure contributes to
	// contention relative to CPU utilization.
	BWWeight float64
	// CrossDiscount is the contention discount between *different*
	// applications sharing an instance: diverse threads interleave better
	// than same-type threads (they do not collide on identical cache
	// footprints and bandwidth bursts), so a co-resident of a different
	// demand contributes only (1−CrossDiscount) of its pressure.
	// Homogeneous packing is unaffected.
	CrossDiscount float64
	// IsolationFactor multiplies packed execution time to reflect how well
	// the virtualization layer isolates co-resident threads from the rest of
	// the host (Firecracker microVMs isolate better than shared Kubernetes
	// pods — paper Fig. 18). 1.0 is perfect isolation.
	IsolationFactor float64
}

// Validate reports an error for malformed shapes.
func (s Shape) Validate() error {
	switch {
	case s.Cores < 1:
		return fmt.Errorf("interfere: instance needs ≥1 core, have %d", s.Cores)
	case s.MemoryMB <= 0:
		return fmt.Errorf("interfere: non-positive instance memory")
	case s.MemBWMBps <= 0:
		return fmt.Errorf("interfere: non-positive instance bandwidth")
	case s.ContentionRate < 0 || s.BWWeight < 0:
		return fmt.Errorf("interfere: negative contention parameters")
	case s.CrossDiscount < 0 || s.CrossDiscount > 1:
		return fmt.Errorf("interfere: cross discount %g outside [0,1]", s.CrossDiscount)
	case s.IsolationFactor <= 0:
		return fmt.Errorf("interfere: non-positive isolation factor")
	default:
		return nil
	}
}

// MaxDegree is the maximum number of functions that fit in the instance:
// floor(MemoryMB / demand.MemoryMB), at least 0.
func (s Shape) MaxDegree(d Demand) int {
	if d.MemoryMB <= 0 {
		return 0
	}
	return int(s.MemoryMB / d.MemoryMB)
}

// ContentionKappa is κ: the per-degree exponential contention exponent of
// this demand on this shape.
func (s Shape) ContentionKappa(d Demand) float64 {
	bwPressure := 0.0
	if s.MemBWMBps > 0 {
		bwPressure = math.Min(1, float64(s.Cores)*d.MemBWMBps/s.MemBWMBps)
	}
	return s.ContentionRate * (d.Utilization() + s.BWWeight*bwPressure) / float64(s.Cores)
}

// ExecSeconds returns the wall-clock execution time of one instance running
// `degree` copies of the function concurrently as threads: the exponential
// contention model described in the package comment, floored by work
// conservation (d·CPUSeconds of compute cannot beat the core count), and
// scaled by the platform's isolation factor.
//
// Degree 0 or negative panics: it indicates a caller bug, not bad data.
func ExecSeconds(d Demand, s Shape, degree int) float64 {
	if degree < 1 {
		panic(fmt.Sprintf("interfere: non-positive packing degree %d", degree))
	}
	dd := float64(degree)
	kappa := s.ContentionKappa(d)
	et := d.SoloSeconds() * math.Exp(kappa*(dd-1))
	// Work conservation: degree·CPUSeconds of compute over Cores cores,
	// plus the (overlappable, hence unstretched) I/O phase.
	if floor := d.CPUSeconds*dd/float64(s.Cores) + d.IOSeconds; floor > et {
		et = floor
	}
	return et * s.IsolationFactor
}

// Slowdown is ExecSeconds(degree) normalized by the solo execution time on
// the same shape.
func Slowdown(d Demand, s Shape, degree int) float64 {
	return ExecSeconds(d, s, degree) / ExecSeconds(d, s, 1)
}
