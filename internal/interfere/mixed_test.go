package interfere

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMixedReducesToHomogeneous(t *testing.T) {
	s := demoShape()
	d := demoDemand()
	for _, n := range []int{1, 2, 5, 12, 40} {
		set := make([]Demand, n)
		for i := range set {
			set[i] = d
		}
		mixed := ExecSecondsMixed(set, s)
		homog := ExecSeconds(d, s, n)
		if math.Abs(mixed-homog) > 1e-9*homog {
			t.Fatalf("n=%d: mixed %g ≠ homogeneous %g", n, mixed, homog)
		}
	}
}

func TestMixedSlowestMemberDominates(t *testing.T) {
	s := demoShape()
	long := Demand{CPUSeconds: 90, IOSeconds: 10, MemoryMB: 256, MemBWMBps: 2000}
	short := Demand{CPUSeconds: 5, IOSeconds: 5, MemoryMB: 256, MemBWMBps: 500}
	et := ExecSecondsMixed([]Demand{long, short, short, short}, s)
	if et < long.SoloSeconds() {
		t.Fatalf("instance cannot finish before its longest member: %g < %g", et, long.SoloSeconds())
	}
	// Adding light co-residents must cost the long member less than adding
	// heavy ones.
	heavy := ExecSecondsMixed([]Demand{long, long, long, long}, s)
	if et >= heavy {
		t.Fatalf("light co-residents should interfere less: %g vs %g", et, heavy)
	}
}

func TestMixedMonotoneInMembers(t *testing.T) {
	s := demoShape()
	base := []Demand{demoDemand()}
	prev := ExecSecondsMixed(base, s)
	for i := 0; i < 10; i++ {
		base = append(base, Demand{CPUSeconds: 20, IOSeconds: 20, MemoryMB: 128, MemBWMBps: 1000})
		et := ExecSecondsMixed(base, s)
		if et < prev-1e-12 {
			t.Fatalf("adding a member reduced ET: %g → %g", prev, et)
		}
		prev = et
	}
}

func TestMixedWorkConservation(t *testing.T) {
	s := Shape{Cores: 4, MemoryMB: 10240, MemBWMBps: 1e9, IsolationFactor: 1}
	// No contention configured: only the floor applies.
	set := []Demand{
		{CPUSeconds: 40, MemoryMB: 100},
		{CPUSeconds: 40, MemoryMB: 100},
		{CPUSeconds: 40, MemoryMB: 100},
		{CPUSeconds: 40, MemoryMB: 100},
		{CPUSeconds: 40, MemoryMB: 100},
	}
	// 200 CPU-seconds over 4 cores = 50 s minimum.
	if et := ExecSecondsMixed(set, s); math.Abs(et-50) > 1e-9 {
		t.Fatalf("work-conservation floor violated: %g, want 50", et)
	}
}

func TestFitsMemoryAndValidate(t *testing.T) {
	s := demoShape()
	okSet := []Demand{{CPUSeconds: 1, MemoryMB: 5000}, {CPUSeconds: 1, MemoryMB: 5000}}
	if !s.FitsMemory(okSet) {
		t.Fatal("10000 MB should fit in 10240")
	}
	if err := s.ValidateMixed(okSet); err != nil {
		t.Fatal(err)
	}
	bigSet := []Demand{{CPUSeconds: 1, MemoryMB: 6000}, {CPUSeconds: 1, MemoryMB: 6000}}
	if s.FitsMemory(bigSet) {
		t.Fatal("12000 MB should not fit")
	}
	if s.ValidateMixed(bigSet) == nil {
		t.Fatal("oversized set accepted")
	}
	if s.ValidateMixed(nil) == nil {
		t.Fatal("empty set accepted")
	}
	if s.ValidateMixed([]Demand{{}}) == nil {
		t.Fatal("invalid member accepted")
	}
}

func TestMixedEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty set should panic")
		}
	}()
	ExecSecondsMixed(nil, demoShape())
}

// Property: permuting the packed set never changes the instance's ET.
func TestMixedPermutationInvariant(t *testing.T) {
	s := demoShape()
	f := func(a, b, c uint8) bool {
		d1 := Demand{CPUSeconds: 1 + float64(a), IOSeconds: 3, MemoryMB: 100, MemBWMBps: 500}
		d2 := Demand{CPUSeconds: 1 + float64(b), IOSeconds: 7, MemoryMB: 200, MemBWMBps: 1500}
		d3 := Demand{CPUSeconds: 1 + float64(c), IOSeconds: 1, MemoryMB: 300, MemBWMBps: 2500}
		x := ExecSecondsMixed([]Demand{d1, d2, d3}, s)
		y := ExecSecondsMixed([]Demand{d3, d1, d2}, s)
		return math.Abs(x-y) < 1e-12*x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
