package interfere

import (
	"math"
	"testing"
	"testing/quick"
)

func demoDemand() Demand {
	return Demand{CPUSeconds: 55, IOSeconds: 45, MemoryMB: 256, MemBWMBps: 2200}
}

func demoShape() Shape {
	return Shape{Cores: 6, MemoryMB: 10240, MemBWMBps: 25600,
		ContentionRate: 0.38, BWWeight: 0.3, IsolationFactor: 1}
}

func TestSoloMatchesDemand(t *testing.T) {
	d, s := demoDemand(), demoShape()
	et := ExecSeconds(d, s, 1)
	if math.Abs(et-d.SoloSeconds()) > 1e-9 {
		t.Fatalf("solo ET %g, want %g", et, d.SoloSeconds())
	}
}

func TestExecMonotoneInDegree(t *testing.T) {
	d, s := demoDemand(), demoShape()
	prev := 0.0
	for deg := 1; deg <= s.MaxDegree(d); deg++ {
		et := ExecSeconds(d, s, deg)
		if et < prev {
			t.Fatalf("ET not monotone at degree %d: %g < %g", deg, et, prev)
		}
		prev = et
	}
}

// TestExponentialShape verifies the ground truth is log-linear in degree in
// the contention-dominated regime — the empirical shape the paper's Eq. 1
// was chosen to fit (Fig. 4).
func TestExponentialShape(t *testing.T) {
	d, s := demoDemand(), demoShape()
	kappa := s.ContentionKappa(d)
	if kappa <= 0 {
		t.Fatal("expected positive contention")
	}
	for deg := 2; deg <= 40; deg++ {
		ratio := ExecSeconds(d, s, deg) / ExecSeconds(d, s, deg-1)
		if math.Abs(math.Log(ratio)-kappa) > 1e-9 {
			t.Fatalf("degree %d: log-ratio %g, want κ=%g", deg, math.Log(ratio), kappa)
		}
	}
}

// TestComputeBoundDegradesFaster encodes the paper's Smith-Waterman
// observation: compute-intensive functions pack worse than I/O-heavy ones.
func TestComputeBoundDegradesFaster(t *testing.T) {
	s := demoShape()
	cpuBound := Demand{CPUSeconds: 92, IOSeconds: 10, MemoryMB: 292, MemBWMBps: 3600}
	ioBound := Demand{CPUSeconds: 22, IOSeconds: 18, MemoryMB: 341, MemBWMBps: 1600}
	if Slowdown(cpuBound, s, 12) <= Slowdown(ioBound, s, 12) {
		t.Fatalf("CPU-bound slowdown %g should exceed I/O-bound %g",
			Slowdown(cpuBound, s, 12), Slowdown(ioBound, s, 12))
	}
}

// TestWorkConservationFloor: with contention switched off, packing is free
// only until the cores are saturated with actual compute.
func TestWorkConservationFloor(t *testing.T) {
	d := Demand{CPUSeconds: 60, IOSeconds: 0, MemoryMB: 100}
	s := Shape{Cores: 6, MemoryMB: 10240, MemBWMBps: 1e9, IsolationFactor: 1}
	if got := ExecSeconds(d, s, 6); math.Abs(got-60) > 1e-9 {
		t.Fatalf("ET at degree=cores should be uncontended: %g", got)
	}
	if got := ExecSeconds(d, s, 12); math.Abs(got-120) > 1e-9 {
		t.Fatalf("ET at 2×cores should double (work conservation): %g", got)
	}
}

func TestBandwidthPressureRaisesContention(t *testing.T) {
	s := demoShape()
	lowBW := Demand{CPUSeconds: 50, IOSeconds: 50, MemoryMB: 256, MemBWMBps: 500}
	highBW := Demand{CPUSeconds: 50, IOSeconds: 50, MemoryMB: 256, MemBWMBps: 8000}
	if s.ContentionKappa(highBW) <= s.ContentionKappa(lowBW) {
		t.Fatal("higher bandwidth demand should raise contention")
	}
	// Pressure saturates at 1: absurd demands do not explode κ.
	insane := lowBW
	insane.MemBWMBps = 1e9
	capped := s.ContentionKappa(insane)
	justSaturated := lowBW
	justSaturated.MemBWMBps = s.MemBWMBps // cores×this ≥ instance BW
	if math.Abs(capped-s.ContentionKappa(justSaturated)) > 1e-12 {
		t.Fatal("bandwidth pressure should cap at 1")
	}
}

func TestIsolationFactorScales(t *testing.T) {
	d, s := demoDemand(), demoShape()
	s.IsolationFactor = 1.12
	base := demoShape()
	r := ExecSeconds(d, s, 8) / ExecSeconds(d, base, 8)
	if math.Abs(r-1.12) > 1e-9 {
		t.Fatalf("isolation factor not applied multiplicatively: %g", r)
	}
}

func TestMaxDegree(t *testing.T) {
	s := demoShape()
	cases := []struct {
		memMB float64
		want  int
	}{
		{256, 40},  // Video
		{680, 15},  // Sort
		{341, 30},  // StatelessCost
		{292, 35},  // Smith-Waterman
		{10241, 0}, // doesn't fit at all
	}
	for _, c := range cases {
		got := s.MaxDegree(Demand{MemoryMB: c.memMB})
		if got != c.want {
			t.Fatalf("MaxDegree(%g MB) = %d, want %d", c.memMB, got, c.want)
		}
	}
	if s.MaxDegree(Demand{}) != 0 {
		t.Fatal("zero-memory demand should yield 0")
	}
}

func TestUtilization(t *testing.T) {
	d := Demand{CPUSeconds: 30, IOSeconds: 70, MemoryMB: 1}
	if math.Abs(d.Utilization()-0.3) > 1e-12 {
		t.Fatalf("utilization %g, want 0.3", d.Utilization())
	}
	if (Demand{}).Utilization() != 0 {
		t.Fatal("zero demand utilization should be 0")
	}
}

func TestValidation(t *testing.T) {
	if err := demoDemand().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := demoShape().Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []Demand{
		{CPUSeconds: -1, MemoryMB: 10},
		{CPUSeconds: 0, IOSeconds: 0, MemoryMB: 10},
		{CPUSeconds: 1, MemoryMB: 0},
		{CPUSeconds: 1, MemoryMB: 10, MemBWMBps: -5},
		{CPUSeconds: 1, MemoryMB: 10, ShuffleFraction: 1.5},
	}
	for i, b := range bads {
		if b.Validate() == nil {
			t.Fatalf("bad demand %d accepted: %+v", i, b)
		}
	}
	badShapes := []Shape{
		{Cores: 0, MemoryMB: 1, MemBWMBps: 1, IsolationFactor: 1},
		{Cores: 1, MemoryMB: 0, MemBWMBps: 1, IsolationFactor: 1},
		{Cores: 1, MemoryMB: 1, MemBWMBps: 0, IsolationFactor: 1},
		{Cores: 1, MemoryMB: 1, MemBWMBps: 1, IsolationFactor: 0},
		{Cores: 1, MemoryMB: 1, MemBWMBps: 1, IsolationFactor: 1, ContentionRate: -1},
		{Cores: 1, MemoryMB: 1, MemBWMBps: 1, IsolationFactor: 1, BWWeight: -1},
	}
	for i, b := range badShapes {
		if b.Validate() == nil {
			t.Fatalf("bad shape %d accepted: %+v", i, b)
		}
	}
}

func TestDegreeZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("degree 0 should panic")
		}
	}()
	ExecSeconds(demoDemand(), demoShape(), 0)
}

// Property: slowdown is ≥1 and monotone for arbitrary sane demands.
func TestSlowdownProperty(t *testing.T) {
	f := func(cpu, io, bw uint8) bool {
		d := Demand{
			CPUSeconds: 1 + float64(cpu),
			IOSeconds:  float64(io),
			MemoryMB:   256,
			MemBWMBps:  float64(bw) * 100,
		}
		s := demoShape()
		prev := 0.0
		for deg := 1; deg <= 40; deg++ {
			sl := Slowdown(d, s, deg)
			if sl < 1-1e-12 || sl < prev-1e-12 {
				return false
			}
			prev = sl
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
