// Package orchestrator is the Step-Functions-style execution layer: it
// takes an application (a resource demand), a concurrency level, and a
// packing plan, fires the concurrent invocation burst on a platform, and
// reports the paper's metrics. It also hosts the full ProPack pipeline —
// profile, fit, recommend, execute — used by the experiments and examples.
package orchestrator

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/interfere"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/trace"
)

// Execute runs C functions packed at the given degree as one concurrent
// burst ("map state") and returns the run's metrics.
func Execute(cfg platform.Config, d interfere.Demand, c, degree int, seed int64) (trace.Metrics, error) {
	return ExecuteObserved(cfg, d, c, degree, seed, nil, "")
}

// ExecuteObserved is Execute with event-level observability: the burst's
// stage spans and fault events flow into rec (nil disables recording), and
// label names the burst in exported traces.
func ExecuteObserved(cfg platform.Config, d interfere.Demand, c, degree int, seed int64, rec obs.Recorder, label string) (trace.Metrics, error) {
	res, err := platform.Run(cfg, platform.Burst{
		Demand:    d,
		Functions: c,
		Degree:    degree,
		Seed:      seed,
		Recorder:  rec,
		Label:     label,
	})
	if err != nil {
		return trace.Metrics{}, err
	}
	return trace.FromResult(res), nil
}

// ProPackRun is the outcome of the full ProPack pipeline on one
// application/platform/concurrency triple.
type ProPackRun struct {
	Plan     core.Plan
	Models   core.Models
	Metrics  trace.Metrics
	Overhead core.Overhead
}

// MetricsWithOverhead returns the run metrics with ProPack's modeling
// overhead folded in, as the paper's reported results do ("our performance
// and cost results include all the overhead of building this analytical
// model").
func (r ProPackRun) MetricsWithOverhead() trace.Metrics {
	m := r.Metrics
	m.ExpenseUSD += r.Overhead.TotalUSD()
	m.FunctionHours += r.Overhead.ExecProbeSec / 3600
	return m
}

// RunProPack executes the complete ProPack pipeline: build the analytical
// models from probes, choose the optimal packing degree for the weights,
// run the burst, and account the modeling overhead.
func RunProPack(cfg platform.Config, d interfere.Demand, c int, w core.Weights, seed int64) (ProPackRun, error) {
	meas := &core.SimMeasurer{Config: cfg, Demand: d, Seed: seed}
	models, _, _, overhead, err := core.BuildModels(meas, core.ProfileOptionsFor(cfg, d))
	if err != nil {
		return ProPackRun{}, fmt.Errorf("orchestrator: modeling failed: %w", err)
	}
	plan, err := models.PlanFor(c, w)
	if err != nil {
		return ProPackRun{}, err
	}
	metrics, err := Execute(cfg, d, c, plan.Degree, seed)
	if err != nil {
		return ProPackRun{}, err
	}
	return ProPackRun{Plan: plan, Models: models, Metrics: metrics, Overhead: overhead}, nil
}

// RunProPackQoS is RunProPack with the Sec. 2.6 QoS-aware weight search:
// the objective weights are chosen so the modeled tail service time stays
// within qosSec.
func RunProPackQoS(cfg platform.Config, d interfere.Demand, c int, qosSec float64, seed int64) (ProPackRun, core.Weights, error) {
	meas := &core.SimMeasurer{Config: cfg, Demand: d, Seed: seed}
	models, _, _, overhead, err := core.BuildModels(meas, core.ProfileOptionsFor(cfg, d))
	if err != nil {
		return ProPackRun{}, core.Weights{}, fmt.Errorf("orchestrator: modeling failed: %w", err)
	}
	plan, w, err := models.QoSPlan(c, qosSec, core.QoSOptions{})
	if err != nil {
		return ProPackRun{}, core.Weights{}, err
	}
	metrics, err := Execute(cfg, d, c, plan.Degree, seed)
	if err != nil {
		return ProPackRun{}, core.Weights{}, err
	}
	return ProPackRun{Plan: plan, Models: models, Metrics: metrics, Overhead: overhead}, w, nil
}

// ExecuteWarm is Execute with a warm-instance pool: the first `warm`
// instances reuse provisioned capacity (no build/ship/boot). Packing and
// reuse are complementary, not competitive — the paper positions ProPack
// against Pywren's reuse, but a manager can stack both.
func ExecuteWarm(cfg platform.Config, d interfere.Demand, c, degree, warm int, seed int64) (trace.Metrics, error) {
	if warm < 0 {
		return trace.Metrics{}, fmt.Errorf("orchestrator: negative warm pool %d", warm)
	}
	b := platform.Burst{Demand: d, Functions: c, Degree: degree, Warm: warm, Seed: seed}
	if n := b.Instances(); warm > n {
		warm = n
		b.Warm = warm
	}
	res, err := platform.Run(cfg, b)
	if err != nil {
		return trace.Metrics{}, err
	}
	return trace.FromResult(res), nil
}
