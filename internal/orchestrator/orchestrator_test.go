package orchestrator

import (
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/workload"
)

func TestExecuteBasics(t *testing.T) {
	m, err := Execute(platform.AWSLambda(), workload.Sort{}.Demand(), 300, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Degree != 5 || m.Instances != 60 {
		t.Fatalf("identity wrong: %+v", m)
	}
	if m.TotalService <= 0 || m.ExpenseUSD <= 0 {
		t.Fatalf("degenerate metrics: %+v", m)
	}
}

func TestRunProPackBeatsBaseline(t *testing.T) {
	cfg := platform.AWSLambda()
	d := workload.StatelessCost{}.Demand()
	const c = 3000
	run, err := RunProPack(cfg, d, c, core.Balanced(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if run.Plan.Degree < 2 {
		t.Fatalf("expected packing at C=%d, got degree %d", c, run.Plan.Degree)
	}
	base, err := Execute(cfg, d, c, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	withOv := run.MetricsWithOverhead()
	if withOv.TotalService >= base.TotalService {
		t.Fatalf("ProPack no faster: %g vs %g", withOv.TotalService, base.TotalService)
	}
	if withOv.ExpenseUSD >= base.ExpenseUSD {
		t.Fatalf("ProPack no cheaper even with overhead: $%g vs $%g",
			withOv.ExpenseUSD, base.ExpenseUSD)
	}
	if withOv.ExpenseUSD <= run.Metrics.ExpenseUSD {
		t.Fatal("overhead accounting did not increase expense")
	}
}

func TestRunProPackQoSMeetsBound(t *testing.T) {
	cfg := platform.AWSLambda()
	d := workload.Xapian{}.Demand()
	const c = 2000
	// First find what the expense-only tail looks like, then bound between
	// that and the best possible.
	exp, err := RunProPack(cfg, d, c, core.ExpenseOnly(), 10)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := RunProPack(cfg, d, c, core.ServiceOnly(), 10)
	if err != nil {
		t.Fatal(err)
	}
	bound := (exp.Metrics.TailService + svc.Metrics.TailService) / 2
	run, w, err := RunProPackQoS(cfg, d, c, bound, 10)
	if err != nil {
		t.Fatal(err)
	}
	if w.Service <= 0 || w.Service > 1 {
		t.Fatalf("degenerate QoS weights: %+v", w)
	}
	if run.Metrics.TailService > bound*1.1 { // modeled bound, 10% slack on observed
		t.Fatalf("observed tail %g far above QoS bound %g", run.Metrics.TailService, bound)
	}
}

// TestWarmReuseStacksWithPacking: a pool covering the whole packed burst
// removes the remaining cold-start path, so the time to the last start
// (scaling time, measured from invocation) drops — reuse and packing
// compose. Total service time, measured from the *first* start, is
// insensitive to uniform provisioning savings by construction.
func TestWarmReuseStacksWithPacking(t *testing.T) {
	cfg := platform.AWSLambda()
	d := workload.Video{}.Demand()
	const c, deg = 1600, 8 // 200 instances
	packed, err := Execute(cfg, d, c, deg, 5)
	if err != nil {
		t.Fatal(err)
	}
	stacked, err := ExecuteWarm(cfg, d, c, deg, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	if stacked.ScalingTime >= packed.ScalingTime {
		t.Fatalf("warm reuse should cut the packed burst's scaling time: %g vs %g",
			stacked.ScalingTime, packed.ScalingTime)
	}
	if stacked.TotalService > packed.TotalService*1.02 {
		t.Fatalf("stacking should not hurt service: %g vs %g",
			stacked.TotalService, packed.TotalService)
	}
	// Oversized pools clamp rather than error.
	if _, err := ExecuteWarm(cfg, d, c, deg, 10_000, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := ExecuteWarm(cfg, d, c, deg, -1, 5); err == nil {
		t.Fatal("negative pool accepted")
	}
}

// TestExecuteWarmClampEquivalence pins the clamp semantics: a pool larger
// than the instance count behaves exactly like a pool of all instances, for
// every degree shape (including a ragged last instance).
func TestExecuteWarmClampEquivalence(t *testing.T) {
	cfg := platform.AWSLambda()
	d := workload.Video{}.Demand()
	for _, tc := range []struct{ c, deg int }{{100, 1}, {100, 7}, {64, 8}} {
		n := (tc.c + tc.deg - 1) / tc.deg
		exact, err := ExecuteWarm(cfg, d, tc.c, tc.deg, n, 9)
		if err != nil {
			t.Fatal(err)
		}
		over, err := ExecuteWarm(cfg, d, tc.c, tc.deg, n*10+1, 9)
		if err != nil {
			t.Fatal(err)
		}
		if exact != over {
			t.Fatalf("c=%d deg=%d: oversized pool diverged from full pool:\nexact %+v\nover  %+v",
				tc.c, tc.deg, exact, over)
		}
		// An all-warm burst has no cold path left: warm-start-only scaling.
		if exact.ScalingTime <= 0 {
			t.Fatalf("degenerate scaling time %g", exact.ScalingTime)
		}
	}
}
