package orchestrator

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/interfere"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Heterogeneous jobs: several applications spawning their bursts together
// (the Sec. 5 extension). Three deployment shapes share one control plane:
//
//   - ExecuteJointUnpacked — every function in its own instance (baseline);
//   - ExecutePerAppPacked  — each app packed at its own ProPack degree, but
//     instances host a single application (what stock ProPack would do);
//   - RunMixedProPack      — cross-application packing planned by
//     core.PlanMixed with the compositional Eq. 1 model.

// MixedApp is one application's share of a heterogeneous job.
type MixedApp struct {
	Workload workload.Workload
	Count    int
}

// buildApps profiles every application on the platform and returns the
// core.App descriptors plus the shared platform scaling model and the
// accumulated modeling overhead.
func buildApps(cfg platform.Config, apps []MixedApp, seed int64) ([]core.App, core.ScalingModel, core.Overhead, error) {
	if len(apps) == 0 {
		return nil, core.ScalingModel{}, core.Overhead{}, fmt.Errorf("orchestrator: empty app set")
	}
	out := make([]core.App, len(apps))
	var scaling core.ScalingModel
	var total core.Overhead
	for i, a := range apps {
		meas := &core.SimMeasurer{Config: cfg, Demand: a.Workload.Demand(), Seed: seed + int64(i)}
		opts := core.ProfileOptionsFor(cfg, a.Workload.Demand())
		if i > 0 {
			// The scaling model is a platform property — probe it once.
			opts.ScalingProbes = []int{100, 1000, 3000}
		}
		models, _, _, ov, err := core.BuildModels(meas, opts)
		if err != nil {
			return nil, core.ScalingModel{}, core.Overhead{}, fmt.Errorf("orchestrator: profiling %s: %w", a.Workload.Name(), err)
		}
		if i == 0 {
			scaling = models.Scaling
		}
		total.Add(ov)
		out[i] = core.App{
			Name:     a.Workload.Name(),
			MemoryMB: a.Workload.Demand().MemoryMB,
			Count:    a.Count,
			ET:       models.ET,
		}
	}
	return out, scaling, total, nil
}

// binsFromPlan expands a MixedPlan into platform bins.
func binsFromPlan(plan core.MixedPlan, apps []MixedApp) []platform.Bin {
	bins := make([]platform.Bin, 0, len(plan.BinCounts))
	for _, counts := range plan.BinCounts {
		var bin platform.Bin
		for k, n := range counts {
			d := apps[k].Workload.Demand()
			for j := 0; j < n; j++ {
				bin.Demands = append(bin.Demands, d)
			}
		}
		if len(bin.Demands) > 0 {
			bins = append(bins, bin)
		}
	}
	return bins
}

// MixedRun is the outcome of a heterogeneous ProPack execution.
type MixedRun struct {
	Plan     core.MixedPlan
	Metrics  trace.Metrics
	Overhead core.Overhead
}

// probeCrossDiscount measures the cross-application contention discount by
// running one small mixed instance per app pair (k functions of each) and
// inverting the compositional Eq. 1 prediction. The probes' execution time
// is charged to the overhead like any other ProPack probe.
func probeCrossDiscount(cfg platform.Config, apps []MixedApp, coreApps []core.App,
	seed int64, overhead *core.Overhead) (float64, error) {
	const pairK = 4
	rate := cfg.MemoryGB() * cfg.GBSecondUSD
	var sum float64
	var pairs int
	for i := 0; i < len(apps); i++ {
		for j := i + 1; j < len(apps); j++ {
			var bin platform.Bin
			for n := 0; n < pairK; n++ {
				bin.Demands = append(bin.Demands,
					apps[i].Workload.Demand(), apps[j].Workload.Demand())
			}
			if !cfg.Shape.FitsMemory(bin.Demands) {
				continue // pair probe impossible; fall back to no discount
			}
			var etSum float64
			const trials = 3
			for t := 0; t < trials; t++ {
				res, err := platform.RunMixed(cfg, platform.MixedBurst{
					Bins: []platform.Bin{bin}, Seed: seed + int64(100*i+10*j+t),
				})
				if err != nil {
					return 0, fmt.Errorf("orchestrator: pair probe %s+%s: %w",
						apps[i].Workload.Name(), apps[j].Workload.Name(), err)
				}
				et := res.MeanExecSeconds()
				etSum += et
				overhead.ExecProbeSec += et
				overhead.ExecProbeUSD += et * rate
			}
			disc, err := core.EstimateCrossDiscount(coreApps[i], coreApps[j], pairK, etSum/trials)
			if err != nil {
				return 0, err
			}
			sum += disc
			pairs++
		}
	}
	if pairs == 0 {
		return 0, nil
	}
	return sum / float64(pairs), nil
}

// PlanMixedJob runs the heterogeneous planning pipeline — per-app
// profiling, cross-discount pair probes, core.PlanMixed — without executing
// the result. The serve daemon's /v1/mixed endpoint is plan-only: callers
// inspect the recommendation (and its modeling overhead) before committing
// a burst.
func PlanMixedJob(cfg platform.Config, apps []MixedApp, w core.Weights, seed int64) (core.MixedPlan, core.Overhead, error) {
	coreApps, scaling, overhead, err := buildApps(cfg, apps, seed)
	if err != nil {
		return core.MixedPlan{}, core.Overhead{}, err
	}
	disc, err := probeCrossDiscount(cfg, apps, coreApps, seed, &overhead)
	if err != nil {
		return core.MixedPlan{}, core.Overhead{}, err
	}
	plan, err := core.PlanMixed(coreApps, core.MixedPlanOptions{
		InstanceMemoryMB:   cfg.Shape.MemoryMB,
		MaxExecSec:         cfg.MaxExecSec,
		Weights:            w,
		Scaling:            scaling,
		RatePerInstanceSec: cfg.MemoryGB() * cfg.GBSecondUSD,
		CrossDiscount:      disc,
	})
	if err != nil {
		return core.MixedPlan{}, core.Overhead{}, err
	}
	return plan, overhead, nil
}

// RunMixedProPack plans cross-application packing and executes it. The
// final burst's spans and events flow into rec (nil disables recording);
// planning probes are never recorded.
func RunMixedProPack(cfg platform.Config, apps []MixedApp, w core.Weights, seed int64, rec obs.Recorder) (MixedRun, error) {
	plan, overhead, err := PlanMixedJob(cfg, apps, w, seed)
	if err != nil {
		return MixedRun{}, err
	}
	res, err := platform.RunMixed(cfg, platform.MixedBurst{
		Bins: binsFromPlan(plan, apps), Seed: seed,
		Recorder: rec, Label: "mixed",
	})
	if err != nil {
		return MixedRun{}, err
	}
	return MixedRun{Plan: plan, Metrics: trace.FromResult(res), Overhead: overhead}, nil
}

// ExecutePerAppPacked runs the job with each application packed at its own
// single-app ProPack degree — instances never mix applications, but all
// instances share one invocation burst (and its control-plane contention).
// rec receives the burst's observability records (nil disables recording).
func ExecutePerAppPacked(cfg platform.Config, apps []MixedApp, w core.Weights, seed int64, rec obs.Recorder) (trace.Metrics, []int, error) {
	coreApps, scaling, _, err := buildApps(cfg, apps, seed)
	if err != nil {
		return trace.Metrics{}, nil, err
	}
	// Total instance count depends on every app's degree; solve each app
	// against the joint burst size iteratively (one pass suffices: the
	// scaling term is shared, so we approximate with the app's own C).
	degrees := make([]int, len(apps))
	var bins []platform.Bin
	for k, a := range apps {
		models := core.Models{
			ET:                 coreApps[k].ET,
			Scaling:            scaling,
			RatePerInstanceSec: cfg.MemoryGB() * cfg.GBSecondUSD,
			MaxDegree:          cfg.Shape.MaxDegree(a.Workload.Demand()),
		}
		deg, err := models.OptimalDegree(a.Count, w)
		if err != nil {
			return trace.Metrics{}, nil, err
		}
		degrees[k] = deg
		remaining := a.Count
		for remaining > 0 {
			n := deg
			if remaining < n {
				n = remaining
			}
			var bin platform.Bin
			for j := 0; j < n; j++ {
				bin.Demands = append(bin.Demands, a.Workload.Demand())
			}
			bins = append(bins, bin)
			remaining -= n
		}
	}
	res, err := platform.RunMixed(cfg, platform.MixedBurst{
		Bins: bins, Seed: seed, Recorder: rec, Label: "per-app",
	})
	if err != nil {
		return trace.Metrics{}, nil, err
	}
	return trace.FromResult(res), degrees, nil
}

// ExecuteJointUnpacked runs every function of every application in its own
// instance, all in one burst — the traditional deployment of a
// heterogeneous job. rec receives the burst's observability records (nil
// disables recording).
func ExecuteJointUnpacked(cfg platform.Config, apps []MixedApp, seed int64, rec obs.Recorder) (trace.Metrics, error) {
	var bins []platform.Bin
	for _, a := range apps {
		d := a.Workload.Demand()
		for j := 0; j < a.Count; j++ {
			bins = append(bins, platform.Bin{Demands: []interfere.Demand{d}})
		}
	}
	res, err := platform.RunMixed(cfg, platform.MixedBurst{
		Bins: bins, Seed: seed, Recorder: rec, Label: "unpacked",
	})
	if err != nil {
		return trace.Metrics{}, err
	}
	return trace.FromResult(res), nil
}
