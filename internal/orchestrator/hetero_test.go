package orchestrator

import (
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/workload"
)

// heteroJob pairs a compute-bound app with an I/O-leaning one at a scale
// where the scaling bottleneck dominates (total 3000 concurrent functions).
func heteroJob() []MixedApp {
	return []MixedApp{
		{Workload: workload.SmithWaterman{}, Count: 1500},
		{Workload: workload.StatelessCost{}, Count: 1500},
	}
}

func TestMixedProPackBeatsUnpacked(t *testing.T) {
	cfg := platform.AWSLambda()
	apps := heteroJob()
	base, err := ExecuteJointUnpacked(cfg, apps, 31, nil)
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := RunMixedProPack(cfg, apps, core.Balanced(), 31, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mixed.Metrics.TotalService >= base.TotalService {
		t.Fatalf("planned packing no faster: %g vs %g", mixed.Metrics.TotalService, base.TotalService)
	}
	if mixed.Metrics.ExpenseUSD >= base.ExpenseUSD {
		t.Fatalf("planned packing no cheaper: $%g vs $%g", mixed.Metrics.ExpenseUSD, base.ExpenseUSD)
	}
	if mixed.Plan.Instances() >= base.Instances {
		t.Fatal("plan did not reduce instance count")
	}
	if mixed.Plan.Strategy != "mixed" && mixed.Plan.Strategy != "segregated" {
		t.Fatalf("unknown strategy %q", mixed.Plan.Strategy)
	}
}

// TestPlannerPrefersSegregationForUnequalDurations: Smith-Waterman (~102 s
// solo) and Stateless Cost (~40 s solo) should not share instances — the
// short functions would be billed for the long instances' wall time — so
// the planner must pick the segregated composition for this pair.
func TestPlannerPrefersSegregationForUnequalDurations(t *testing.T) {
	cfg := platform.AWSLambda()
	mixed, err := RunMixedProPack(cfg, heteroJob(), core.Balanced(), 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mixed.Plan.Strategy != "segregated" {
		t.Fatalf("expected segregated composition for unequal solo durations, got %q",
			mixed.Plan.Strategy)
	}
}

func TestPerAppPackedIsBetterThanUnpackedAtScale(t *testing.T) {
	cfg := platform.AWSLambda()
	apps := heteroJob()
	base, err := ExecuteJointUnpacked(cfg, apps, 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	perApp, degrees, err := ExecutePerAppPacked(cfg, apps, core.Balanced(), 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(degrees) != 2 || degrees[0] < 1 || degrees[1] < 1 {
		t.Fatalf("bad degrees %v", degrees)
	}
	// The compute-bound app must pack less than the I/O-leaning one.
	if degrees[0] >= degrees[1] {
		t.Fatalf("Smith-Waterman (%d) should pack less than Stateless Cost (%d)",
			degrees[0], degrees[1])
	}
	if perApp.TotalService >= base.TotalService || perApp.ExpenseUSD >= base.ExpenseUSD {
		t.Fatalf("per-app packing should beat unpacked at this scale:\n%+v\n%+v", perApp, base)
	}
}

// TestPlannerAtLeastAsGoodAsPerApp: the planner's candidate set includes
// the per-app composition, so (modulo model error) it cannot lose to it on
// the joint objective; allow 10% slack for model-vs-observed drift.
func TestPlannerAtLeastAsGoodAsPerApp(t *testing.T) {
	cfg := platform.AWSLambda()
	apps := heteroJob()
	perApp, _, err := ExecutePerAppPacked(cfg, apps, core.Balanced(), 33, nil)
	if err != nil {
		t.Fatal(err)
	}
	planned, err := RunMixedProPack(cfg, apps, core.Balanced(), 33, nil)
	if err != nil {
		t.Fatal(err)
	}
	if planned.Metrics.TotalService > 1.10*perApp.TotalService {
		t.Fatalf("planned service %g far worse than per-app %g",
			planned.Metrics.TotalService, perApp.TotalService)
	}
	if planned.Metrics.ExpenseUSD > 1.10*perApp.ExpenseUSD {
		t.Fatalf("planned expense $%g far worse than per-app $%g",
			planned.Metrics.ExpenseUSD, perApp.ExpenseUSD)
	}
}

// TestMixedWinsForSimilarDurations: Video (~100 s solo, light pressure) and
// Smith-Waterman (~102 s solo, heavy pressure) have matched durations, so
// cross-application bins give the compute-bound members lighter neighbours
// at no ride-along cost — the mixed composition should win the service
// objective.
func TestMixedWinsForSimilarDurations(t *testing.T) {
	cfg := platform.AWSLambda()
	apps := []MixedApp{
		{Workload: workload.Video{}, Count: 1000},
		{Workload: workload.SmithWaterman{}, Count: 1000},
	}
	planned, err := RunMixedProPack(cfg, apps, core.ServiceOnly(), 34, nil)
	if err != nil {
		t.Fatal(err)
	}
	if planned.Plan.Strategy != "mixed" {
		t.Fatalf("expected mixed composition for duration-matched apps, got %q", planned.Plan.Strategy)
	}
	// And it must beat the per-app composition on its objective.
	perApp, _, err := ExecutePerAppPacked(cfg, apps, core.ServiceOnly(), 34, nil)
	if err != nil {
		t.Fatal(err)
	}
	if planned.Metrics.TotalService >= perApp.TotalService {
		t.Fatalf("mixed composition should win on service: %g vs %g",
			planned.Metrics.TotalService, perApp.TotalService)
	}
}

func TestBuildAppsValidation(t *testing.T) {
	cfg := platform.AWSLambda()
	if _, _, _, err := buildApps(cfg, nil, 1); err == nil {
		t.Fatal("empty app set accepted")
	}
	if _, err := RunMixedProPack(cfg, nil, core.Balanced(), 1, nil); err == nil {
		t.Fatal("empty job accepted")
	}
}
