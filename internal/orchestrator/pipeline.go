package orchestrator

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/interfere"
	"repro/internal/platform"
	"repro/internal/trace"
)

// Multi-stage workflows: the paper's introduction motivates packing with
// "resource-intensive large-scale applications [that] are frequently broken
// down into multiple steps, where each of the steps is processed in
// parallel by a large number of serverless functions". A Pipeline is that
// shape — a sequence of bursts with a barrier between consecutive stages
// (stage n+1 consumes stage n's output, like Sort's map→reduce).

// Stage is one step of a pipeline.
type Stage struct {
	// Name labels the stage in results.
	Name string
	// Demand is the per-function resource profile of this stage.
	Demand interfere.Demand
	// Count is the stage's concurrency.
	Count int
	// Degree is the packing degree; 0 lets ProPack choose per stage.
	Degree int
}

// PipelineResult aggregates a pipeline execution.
type PipelineResult struct {
	// Stages holds each stage's own metrics (times are stage-local).
	Stages []trace.Metrics
	// Degrees are the packing degrees actually used per stage.
	Degrees []int
	// TotalServiceSec is the end-to-end makespan: the sum of stage service
	// times plus each stage's initial provisioning (stages are separated by
	// barriers, so they do not overlap).
	TotalServiceSec float64
	// ExpenseUSD is the summed bill across stages, including ProPack's
	// modeling overhead for stages it planned.
	ExpenseUSD float64
	// Overhead is the accumulated modeling cost.
	Overhead core.Overhead
}

// RunPipeline executes the stages in order on the platform. Stages with
// Degree 0 are planned by ProPack under the given weights; the platform
// scaling model is fitted once and shared across stages.
func RunPipeline(cfg platform.Config, stages []Stage, w core.Weights, seed int64) (PipelineResult, error) {
	if len(stages) == 0 {
		return PipelineResult{}, fmt.Errorf("orchestrator: empty pipeline")
	}
	var out PipelineResult
	var scaling *core.ScalingModel
	for si, st := range stages {
		if st.Count < 1 {
			return PipelineResult{}, fmt.Errorf("orchestrator: stage %q: count %d < 1", st.Name, st.Count)
		}
		degree := st.Degree
		if degree == 0 {
			meas := &core.SimMeasurer{Config: cfg, Demand: st.Demand, Seed: seed + int64(si)}
			opts := core.ProfileOptionsFor(cfg, st.Demand)
			if scaling != nil {
				// Eq. 2 is a platform property: refresh cheaply, reuse fit.
				opts.ScalingProbes = []int{100, 1000, 3000}
			}
			models, _, _, ov, err := core.BuildModels(meas, opts)
			if err != nil {
				return PipelineResult{}, fmt.Errorf("orchestrator: planning stage %q: %w", st.Name, err)
			}
			if scaling == nil {
				s := models.Scaling
				scaling = &s
			} else {
				models.Scaling = *scaling
			}
			out.Overhead.Add(ov)
			degree, err = models.OptimalDegree(st.Count, w)
			if err != nil {
				return PipelineResult{}, err
			}
		} else if degree < 0 {
			return PipelineResult{}, fmt.Errorf("orchestrator: stage %q: negative degree", st.Name)
		}
		m, err := Execute(cfg, st.Demand, st.Count, degree, seed+int64(si)*101)
		if err != nil {
			return PipelineResult{}, fmt.Errorf("orchestrator: stage %q: %w", st.Name, err)
		}
		out.Stages = append(out.Stages, m)
		out.Degrees = append(out.Degrees, degree)
		// Stage makespan from its invocation: first start is its
		// provisioning delay; TotalService measures from first start.
		out.TotalServiceSec += m.TotalService
		out.ExpenseUSD += m.ExpenseUSD
	}
	out.ExpenseUSD += out.Overhead.TotalUSD()
	return out, nil
}
