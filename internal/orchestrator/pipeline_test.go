package orchestrator

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/interfere"
	"repro/internal/platform"
	"repro/internal/workload"
)

// sortPipeline models the Sort benchmark as its two real phases: a light
// mapper wave partitioning the input, then the reducer wave the paper's
// Sort functions implement.
func sortPipeline(c int, degrees [2]int) []Stage {
	mapper := interfere.Demand{
		CPUSeconds: 8, IOSeconds: 12, MemoryMB: 256, MemBWMBps: 2000,
		InputMB: 16, OutputMB: 16, ShuffleFraction: 1,
	}
	return []Stage{
		{Name: "map", Demand: mapper, Count: c, Degree: degrees[0]},
		{Name: "reduce", Demand: workload.Sort{}.Demand(), Count: c, Degree: degrees[1]},
	}
}

func TestPipelineBarrierAddsStages(t *testing.T) {
	cfg := platform.AWSLambda()
	res, err := RunPipeline(cfg, sortPipeline(500, [2]int{1, 1}), core.Balanced(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 2 || res.Degrees[0] != 1 || res.Degrees[1] != 1 {
		t.Fatalf("unexpected stages/degrees: %v", res.Degrees)
	}
	sum := res.Stages[0].TotalService + res.Stages[1].TotalService
	if math.Abs(res.TotalServiceSec-sum) > 1e-9 {
		t.Fatalf("pipeline makespan %g should be the stage sum %g", res.TotalServiceSec, sum)
	}
	if res.ExpenseUSD <= 0 {
		t.Fatal("no bill")
	}
	if res.Overhead.TotalUSD() != 0 {
		t.Fatal("fixed-degree pipeline should not probe")
	}
}

func TestPipelineProPackPlansEachStage(t *testing.T) {
	cfg := platform.AWSLambda()
	const c = 2000
	planned, err := RunPipeline(cfg, sortPipeline(c, [2]int{0, 0}), core.Balanced(), 4)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := RunPipeline(cfg, sortPipeline(c, [2]int{1, 1}), core.Balanced(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range planned.Degrees {
		if d < 2 {
			t.Fatalf("stage %d not packed: degree %d", i, d)
		}
	}
	// The short I/O-heavy mapper should pack more than the reducer.
	if planned.Degrees[0] <= planned.Degrees[1] {
		t.Fatalf("mapper (%d) should pack more than reducer (%d)",
			planned.Degrees[0], planned.Degrees[1])
	}
	if planned.TotalServiceSec >= baseline.TotalServiceSec {
		t.Fatalf("planned pipeline no faster: %g vs %g",
			planned.TotalServiceSec, baseline.TotalServiceSec)
	}
	if planned.ExpenseUSD >= baseline.ExpenseUSD {
		t.Fatalf("planned pipeline no cheaper: $%g vs $%g",
			planned.ExpenseUSD, baseline.ExpenseUSD)
	}
	if planned.Overhead.TotalUSD() <= 0 {
		t.Fatal("planning overhead not accounted")
	}
}

func TestPipelineValidation(t *testing.T) {
	cfg := platform.AWSLambda()
	if _, err := RunPipeline(cfg, nil, core.Balanced(), 1); err == nil {
		t.Fatal("empty pipeline accepted")
	}
	bad := sortPipeline(10, [2]int{1, 1})
	bad[0].Count = 0
	if _, err := RunPipeline(cfg, bad, core.Balanced(), 1); err == nil {
		t.Fatal("zero-count stage accepted")
	}
	bad = sortPipeline(10, [2]int{-1, 1})
	if _, err := RunPipeline(cfg, bad, core.Balanced(), 1); err == nil {
		t.Fatal("negative degree accepted")
	}
}
