// Package propack is the public face of this repository: a Go
// implementation of ProPack ("ProPack: Executing Concurrent Serverless
// Functions Faster and Cheaper", HPDC 2023), a user-side serverless
// workload manager that packs multiple logical functions into each function
// instance to defeat the scaling-time bottleneck of high-concurrency
// serverless computing — making bursts of thousands of functions both
// faster and cheaper.
//
// # Quick start
//
//	cfg := propack.AWSLambda()
//	app := propack.VideoWorkload()
//	rec, err := propack.Advise(cfg, app.Demand(), 5000, propack.Balanced())
//	// rec.Plan.Degree is the packing degree to use;
//	// run it (simulated here, Step Functions in production):
//	metrics, err := propack.Run(cfg, app.Demand(), 5000, rec.Plan.Degree, 1)
//
// The heavy lifting lives in the internal packages; this package re-exports
// the stable surface: platform configurations, the benchmark workloads, the
// analytical models, the optimizer, and the execution/measurement helpers.
package propack

import (
	"repro/internal/core"
	"repro/internal/funcx"
	"repro/internal/interfere"
	"repro/internal/orchestrator"
	"repro/internal/platform"
	"repro/internal/resilience"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Core model and planning types.
type (
	// Demand is the per-function resource profile of an application.
	Demand = interfere.Demand
	// Models bundles ProPack's fitted analytical models (Eqs. 1–2) with
	// the billing rate; it predicts service time and expense and chooses
	// optimal packing degrees (Eqs. 3–7).
	Models = core.Models
	// ETModel is Eq. 1, the packing-interference model.
	ETModel = core.ETModel
	// ScalingModel is Eq. 2, the platform scaling-time model.
	ScalingModel = core.ScalingModel
	// Weights are the objective weights of Eq. 7.
	Weights = core.Weights
	// Plan is ProPack's recommendation for one concurrency level.
	Plan = core.Plan
	// Overhead accounts the resources spent building the models.
	Overhead = core.Overhead
	// Metrics are the paper's figures of merit for one run.
	Metrics = trace.Metrics
	// PlatformConfig describes a serverless platform (control-plane
	// behaviour, instance shape, billing).
	PlatformConfig = platform.Config
	// Workload is one of the paper's benchmark applications.
	Workload = workload.Workload
	// QoSOptions configures the Sec. 2.6 tail-latency-bounded planning.
	QoSOptions = core.QoSOptions
	// Planner wraps Models with a per-concurrency table cache so repeated
	// planning calls (weight sweeps, quantile sweeps, QoS searches) amortize
	// the model evaluation; results are bit-identical to the Models methods.
	Planner = core.Planner
	// DegreeTable is one cached per-concurrency model table (the Planner's
	// unit of memoization), usable directly for custom degree scans.
	DegreeTable = core.DegreeTable
	// GridModels is the joint degree × memory model stack: one fitted
	// Models per memory size, sharing a single scaling model.
	GridModels = core.GridModels
	// SizeModels is one memory size's slot in a GridModels.
	SizeModels = core.SizeModels
	// SizeProbe is one memory size's probing setup for BuildGridModels.
	SizeProbe = core.SizeProbe
	// JointConfig is a (packing degree, memory size) recommendation.
	JointConfig = core.JointConfig
	// JointPlan is a Plan extended with the chosen memory size.
	JointPlan = core.JointPlan
	// FailureModel describes mid-execution crashes for reliability-aware
	// planning (see AdviseReliable).
	FailureModel = core.FailureModel
	// ReliableModels folds a FailureModel into the fitted models.
	ReliableModels = core.ReliableModels
	// Backoff is a retry policy (fixed, exponential, or decorrelated-jitter
	// schedule with attempt/time budgets) accepted by PlatformConfig.Retry
	// and localfaas jobs.
	Backoff = resilience.Backoff
	// Hedge is a quantile-based straggler-hedging policy accepted by
	// PlatformConfig.Hedge.
	Hedge = resilience.Hedge
)

// Backoff schedule kinds.
const (
	BackoffFixed        = resilience.Fixed
	BackoffExponential  = resilience.Exponential
	BackoffDecorrelated = resilience.Decorrelated
)

// NewPlanner builds a Planner over fitted models (e.g. from Advise's
// Recommendation.Models) for amortized repeated planning.
var NewPlanner = core.NewPlanner

// NewJointPlanner builds a Planner over a memory-size grid (e.g. from
// AdviseJoint's JointRecommendation.Grid): the 1-D entry points plan at the
// base (largest) size, and the joint entry points (PlanJointFor,
// OptimalConfig, QoSPlanJoint) search degree × memory.
var NewJointPlanner = core.NewJointPlanner

// BuildGridModels runs the modeling pipeline once per memory size (one
// scaling schedule shared across sizes) and assembles the joint grid.
var BuildGridModels = core.BuildGridModels

// GridProbesFor derives BuildGridModels probes from the simulator at each
// requested memory size.
var GridProbesFor = core.GridProbesFor

// Objective weight presets (Sec. 2.5).
var (
	// Balanced gives equal importance to service time and expense.
	Balanced = core.Balanced
	// ServiceOnly optimizes service time alone.
	ServiceOnly = core.ServiceOnly
	// ExpenseOnly optimizes expense alone.
	ExpenseOnly = core.ExpenseOnly
)

// Platform configurations evaluated in the paper.
var (
	// AWSLambda is the primary evaluation platform.
	AWSLambda = platform.AWSLambda
	// GoogleCloudFunctions and AzureFunctions are the other commercial
	// platforms (Fig. 21).
	GoogleCloudFunctions = platform.GoogleCloudFunctions
	AzureFunctions       = platform.AzureFunctions
	// FuncX is the on-premise HTC/HPC function-serving fabric (Fig. 18).
	FuncX = funcx.Config
)

// Benchmark workloads (Sec. 3). Each has a real Go kernel plus a calibrated
// resource demand for the datacenter simulator.
func VideoWorkload() Workload         { return workload.Video{} }
func SortWorkload() Workload          { return workload.Sort{} }
func StatelessCostWorkload() Workload { return workload.StatelessCost{} }
func SmithWatermanWorkload() Workload { return workload.SmithWaterman{} }
func XapianWorkload() Workload        { return workload.Xapian{} }

// Workloads returns the full benchmark suite.
func Workloads() []Workload { return workload.All() }

// Recommendation is what Advise returns: the plan plus everything needed to
// audit it.
type Recommendation struct {
	Plan     Plan
	Models   Models
	Overhead Overhead
}

// Advise runs ProPack's modeling pipeline (interference probes, scaling
// probes, model fits) against the platform and returns the optimal packing
// plan for running the application at concurrency c under the given
// objective weights.
func Advise(cfg PlatformConfig, d Demand, c int, w Weights) (Recommendation, error) {
	meas := &core.SimMeasurer{Config: cfg, Demand: d, Seed: 1}
	models, _, _, overhead, err := core.BuildModels(meas, core.ProfileOptionsFor(cfg, d))
	if err != nil {
		return Recommendation{}, err
	}
	plan, err := models.PlanFor(c, w)
	if err != nil {
		return Recommendation{}, err
	}
	return Recommendation{Plan: plan, Models: models, Overhead: overhead}, nil
}

// AdviseReliable is Advise for an unreliable platform: the same modeling
// pipeline, but the optimizer runs on the expected service time and expense
// under the given failure model — a crash at packing degree P loses all P
// functions' work and re-runs (and re-bills) the whole instance, so the
// recommended degree drops as the crash rate rises. With a zero FailureModel
// it agrees exactly with Advise.
func AdviseReliable(cfg PlatformConfig, d Demand, c int, w Weights, f FailureModel) (Recommendation, error) {
	meas := &core.SimMeasurer{Config: cfg, Demand: d, Seed: 1}
	models, _, _, overhead, err := core.BuildModels(meas, core.ProfileOptionsFor(cfg, d))
	if err != nil {
		return Recommendation{}, err
	}
	rm := core.ReliableModels{Models: models, Failure: f}
	plan, err := rm.PlanFor(c, w)
	if err != nil {
		return Recommendation{}, err
	}
	return Recommendation{Plan: plan, Models: models, Overhead: overhead}, nil
}

// AdviseQoS is Advise with a tail-latency bound: the objective weights are
// chosen per Sec. 2.6 so the modeled tail service time stays within qosSec.
// It returns the chosen weights alongside the recommendation.
func AdviseQoS(cfg PlatformConfig, d Demand, c int, qosSec float64) (Recommendation, Weights, error) {
	meas := &core.SimMeasurer{Config: cfg, Demand: d, Seed: 1}
	models, _, _, overhead, err := core.BuildModels(meas, core.ProfileOptionsFor(cfg, d))
	if err != nil {
		return Recommendation{}, Weights{}, err
	}
	plan, w, err := models.QoSPlan(c, qosSec, core.QoSOptions{})
	if err != nil {
		return Recommendation{}, Weights{}, err
	}
	return Recommendation{Plan: plan, Models: models, Overhead: overhead}, w, nil
}

// JointRecommendation is what AdviseJoint returns: the joint (degree,
// memory) plan plus the full grid for auditing and re-planning.
type JointRecommendation struct {
	Plan     JointPlan
	Grid     GridModels
	Overhead Overhead
}

// AdviseJoint is Advise over a memory-size grid: the modeling pipeline runs
// once per size (interference depends on the CPU share, which scales with
// memory; the scaling probes run once, at the largest size), and the
// planner searches packing degree and memory size jointly — Lambda's
// power-tuning knob folded into Eq. 7. sizesMB must be strictly increasing
// and within the platform's instance memory.
func AdviseJoint(cfg PlatformConfig, d Demand, c int, w Weights, sizesMB []float64) (JointRecommendation, error) {
	probes, err := core.GridProbesFor(cfg, d, sizesMB, 1)
	if err != nil {
		return JointRecommendation{}, err
	}
	grid, overhead, err := core.BuildGridModels(probes)
	if err != nil {
		return JointRecommendation{}, err
	}
	plan, err := grid.PlanJointFor(c, w)
	if err != nil {
		return JointRecommendation{}, err
	}
	return JointRecommendation{Plan: plan, Grid: grid, Overhead: overhead}, nil
}

// AdviseJointQoS is AdviseJoint with a tail-latency bound: the weights are
// chosen per Sec. 2.6 over the whole grid, so a larger memory size can buy
// feasibility that no packing degree at the default size could.
func AdviseJointQoS(cfg PlatformConfig, d Demand, c int, qosSec float64, sizesMB []float64) (JointRecommendation, Weights, error) {
	probes, err := core.GridProbesFor(cfg, d, sizesMB, 1)
	if err != nil {
		return JointRecommendation{}, Weights{}, err
	}
	grid, overhead, err := core.BuildGridModels(probes)
	if err != nil {
		return JointRecommendation{}, Weights{}, err
	}
	plan, w, err := grid.QoSPlanJoint(c, qosSec, core.QoSOptions{})
	if err != nil {
		return JointRecommendation{}, Weights{}, err
	}
	return JointRecommendation{Plan: plan, Grid: grid, Overhead: overhead}, w, nil
}

// Run executes c concurrent functions packed at the given degree on the
// platform (degree 1 is the traditional no-packing deployment) and returns
// the run's metrics.
func Run(cfg PlatformConfig, d Demand, c, degree int, seed int64) (Metrics, error) {
	return orchestrator.Execute(cfg, d, c, degree, seed)
}

// RunProPack is the end-to-end convenience: Advise + Run, with the modeling
// overhead folded into the reported expense exactly as the paper reports
// its results.
func RunProPack(cfg PlatformConfig, d Demand, c int, w Weights, seed int64) (Metrics, Plan, error) {
	run, err := orchestrator.RunProPack(cfg, d, c, w, seed)
	if err != nil {
		return Metrics{}, Plan{}, err
	}
	return run.MetricsWithOverhead(), run.Plan, nil
}
