package propack_test

import (
	"fmt"

	propack "repro"
)

// ExampleAdvise shows the minimal planning loop: profile an application on
// a platform and read off the recommended packing degree.
func ExampleAdvise() {
	cfg := propack.AWSLambda()
	app := propack.VideoWorkload()
	rec, err := propack.Advise(cfg, app.Demand(), 5000, propack.Balanced())
	if err != nil {
		panic(err)
	}
	fmt.Println("packing degree:", rec.Plan.Degree)
	fmt.Println("beats baseline on both objectives:",
		rec.Plan.PredictedServiceSec < rec.Plan.BaselineServiceSec &&
			rec.Plan.PredictedExpenseUSD < rec.Plan.BaselineExpenseUSD)
	// Output:
	// packing degree: 15
	// beats baseline on both objectives: true
}
