package propack

import (
	"errors"
	"testing"

	"repro/internal/core"
)

func TestFacadeRunMixed(t *testing.T) {
	cfg := AWSLambda()
	apps := []MixedApp{
		{Workload: SmithWatermanWorkload(), Count: 400},
		{Workload: StatelessCostWorkload(), Count: 400},
	}
	run, err := RunMixed(cfg, apps, Balanced(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if run.Plan.Strategy == "" || run.Plan.Instances() < 1 {
		t.Fatalf("degenerate plan %+v", run.Plan)
	}
	if run.Metrics.ExpenseUSD <= 0 || run.Metrics.TotalService <= 0 {
		t.Fatalf("degenerate metrics %+v", run.Metrics)
	}
}

func TestFacadeRunPipeline(t *testing.T) {
	cfg := AWSLambda()
	stages := []Stage{
		{Name: "only", Demand: XapianWorkload().Demand(), Count: 500},
	}
	res, err := RunPipeline(cfg, stages, Balanced(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 1 || res.Degrees[0] < 1 {
		t.Fatalf("bad pipeline result: %+v", res)
	}
	if res.TotalServiceSec != res.Stages[0].TotalService {
		t.Fatal("single-stage makespan should equal the stage's service time")
	}
}

func TestFacadeRegistry(t *testing.T) {
	reg, err := NewRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := AWSLambda()
	app := XapianWorkload()
	rec, err := Advise(cfg, app.Demand(), 1000, Balanced())
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Save(cfg.Name, app.Name(), rec.Models, rec.Overhead.TotalUSD()); err != nil {
		t.Fatal(err)
	}
	loaded, err := reg.Load(cfg.Name, app.Name())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ET != rec.Models.ET {
		t.Fatal("registry round trip lost the ET model")
	}
	if _, err := reg.Load(cfg.Name, "nope"); !errors.Is(err, core.ErrNotCached) {
		t.Fatalf("expected ErrNotCached, got %v", err)
	}
}

func TestFacadeParetoAndStability(t *testing.T) {
	cfg := AWSLambda()
	rec, err := Advise(cfg, VideoWorkload().Demand(), 3000, Balanced())
	if err != nil {
		t.Fatal(err)
	}
	frontier, err := rec.Models.ParetoFrontier(3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(frontier) == 0 {
		t.Fatal("empty frontier")
	}
	lo, hi, err := rec.Models.DegreeRange(3000, Balanced(), 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Plan.Degree < lo || rec.Plan.Degree > hi {
		t.Fatalf("plan degree %d outside its own stability band [%d, %d]", rec.Plan.Degree, lo, hi)
	}
}
