package propack

import (
	"repro/internal/core"
	"repro/internal/orchestrator"
)

// Extensions beyond the paper's core system, built along its Sec. 5
// discussion: heterogeneous (cross-application) packing, multi-stage
// workflows, and model persistence for overhead amortization.

type (
	// MixedApp is one application's share of a heterogeneous job.
	MixedApp = orchestrator.MixedApp
	// MixedPlan is the heterogeneous packing recommendation.
	MixedPlan = core.MixedPlan
	// MixedRun is the outcome of a heterogeneous ProPack execution.
	MixedRun = orchestrator.MixedRun
	// Stage is one step of a multi-stage workflow.
	Stage = orchestrator.Stage
	// PipelineResult aggregates a workflow execution.
	PipelineResult = orchestrator.PipelineResult
	// Registry persists fitted models across runs.
	Registry = core.Registry
)

// NewRegistry opens (creating if needed) a model registry rooted at dir.
// Cached models let the probing overhead amortize across runs, as the
// paper's Sec. 2.2 argues it should.
func NewRegistry(dir string) (*Registry, error) { return core.NewRegistry(dir) }

// RunMixed plans and executes a heterogeneous job: several applications
// spawning together, with instances that may host functions of different
// applications when the fitted models say mixing helps (Sec. 5 extension).
func RunMixed(cfg PlatformConfig, apps []MixedApp, w Weights, seed int64) (MixedRun, error) {
	return orchestrator.RunMixedProPack(cfg, apps, w, seed, nil)
}

// RunPipeline executes a multi-stage workflow (bursts separated by
// barriers), letting ProPack pick each stage's packing degree where
// Stage.Degree is 0.
func RunPipeline(cfg PlatformConfig, stages []Stage, w Weights, seed int64) (PipelineResult, error) {
	return orchestrator.RunPipeline(cfg, stages, w, seed)
}
